//! Property-based tests of the inverted file and TF/IDF scheme.

use proptest::prelude::*;

use dash_text::{tokenize, DocStats, InvertedFile};

fn doc_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(0u8..10, 0..15)
        .prop_map(|ws| ws.iter().map(|w| format!("word{w}")).collect())
}

proptest! {
    /// Postings are consistent with the corpus: df counts documents,
    /// occurrences sum to the corpus totals, lists are TF-sorted.
    #[test]
    fn inverted_file_consistency(docs in prop::collection::vec(doc_strategy(), 0..20)) {
        let mut index = InvertedFile::new();
        for (i, d) in docs.iter().enumerate() {
            index.add_document(i as u64, d);
        }
        index.finalize();

        prop_assert_eq!(index.document_count(), docs.len() as u64);
        for w in 0u8..10 {
            let word = format!("word{w}");
            let containing = docs.iter().filter(|d| d.contains(&word)).count();
            prop_assert_eq!(index.df(&word), containing, "df({})", word);
            if let Some(list) = index.postings(&word) {
                // TF-sorted descending.
                for pair in list.windows(2) {
                    prop_assert!(pair[0].tf() >= pair[1].tf() - 1e-12);
                }
                // Occurrences match a recount.
                let total: u64 = list.iter().map(|p| p.occurrences).sum();
                let recount: u64 = docs
                    .iter()
                    .map(|d| d.iter().filter(|t| **t == word).count() as u64)
                    .sum();
                prop_assert_eq!(total, recount);
            }
        }
    }

    /// Removing every document empties the index.
    #[test]
    fn remove_all_documents(docs in prop::collection::vec(doc_strategy(), 1..12)) {
        let mut index = InvertedFile::new();
        for (i, d) in docs.iter().enumerate() {
            index.add_document(i as u64, d);
        }
        index.finalize();
        for i in 0..docs.len() {
            index.remove_document(&(i as u64));
        }
        prop_assert_eq!(index.keyword_count(), 0);
    }

    /// DocStats::merge is associative-ish: merging in any order yields
    /// the same totals and TFs.
    #[test]
    fn merge_order_independent(
        a in doc_strategy(),
        b in doc_strategy(),
        c in doc_strategy(),
    ) {
        let (sa, sb, sc) = (
            DocStats::from_tokens(a.clone()),
            DocStats::from_tokens(b.clone()),
            DocStats::from_tokens(c.clone()),
        );
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut right = sc.clone();
        right.merge(&sa);
        right.merge(&sb);
        prop_assert_eq!(left.total_keywords, right.total_keywords);
        for w in left.occurrences.keys() {
            prop_assert!((left.tf(w) - right.tf(w)).abs() < 1e-12);
        }
    }

    /// The tokenizer is idempotent: tokenizing rejoined tokens is stable.
    #[test]
    fn tokenizer_idempotent(text in "\\PC{0,60}") {
        let once = tokenize(&text);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(once, again);
    }
}
