//! Span guards and trace ids — the request-scoped half of the
//! observability layer.
//!
//! A [`SpanGuard`] measures one stage: start it entering the stage,
//! drop it leaving, and the elapsed nanoseconds land in the stage's
//! histogram. The whole cost when the owning registry is disabled is
//! one `Relaxed` bool load — no clock read, no recording — which is
//! what makes leaving instrumentation compiled-in everywhere
//! affordable (the `obs/span-disabled` bench row prices it).
//!
//! A [`TraceId`] names one request across stages: the net front-end
//! mints one per parsed request and threads it through dispatch, so a
//! slow request reconstructed from the slow log
//! ([`SlowLog`](crate::SlowLog)) is identifiable end to end.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::hist::Histogram;

/// A per-request identifier, unique within the process. Minted from a
/// counter, not a clock or RNG — uniqueness is the contract,
/// unpredictability isn't needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The next process-unique trace id (starts at 1; 0 reads as
    /// "untraced").
    pub fn next() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// An RAII stage timer: records elapsed nanoseconds into a histogram
/// on drop. Construct via [`SpanGuard::start`] or the
/// [`span!`](crate::span!) macro.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    live: Option<(&'a Histogram, Instant)>,
}

impl<'a> SpanGuard<'a> {
    /// Starts timing into `histogram` — unless its registry is
    /// disabled, in which case the guard is inert and costs one bool
    /// load total.
    pub fn start(histogram: &'a Histogram) -> SpanGuard<'a> {
        SpanGuard {
            live: histogram.is_enabled().then(|| (histogram, Instant::now())),
        }
    }

    /// Drops the guard without recording (a request that aborted
    /// mid-stage shouldn't pollute the stage's latency distribution).
    pub fn cancel(mut self) {
        self.live = None;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((histogram, started)) = self.live.take() {
            histogram.record(started.elapsed().as_nanos() as u64);
        }
    }
}

/// Times the enclosing scope into a named histogram of the global
/// registry: `let _span = span!("dash_shard_merge_ns");`. The
/// histogram handle is resolved once per call site (a `OnceLock`
/// static), so steady-state cost is the [`SpanGuard`] itself, not a
/// registry lookup.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static HISTOGRAM: std::sync::OnceLock<std::sync::Arc<$crate::Histogram>> =
            std::sync::OnceLock::new();
        $crate::SpanGuard::start(
            HISTOGRAM.get_or_init(|| $crate::Registry::global().histogram($name)),
        )
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn trace_ids_are_unique_and_display_as_hex() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert_ne!(a, b);
        assert_eq!(format!("{}", TraceId(255)), "00000000000000ff");
    }

    #[test]
    fn spans_record_on_drop_and_cancel_suppresses() {
        let r = Registry::new();
        let h = r.histogram("dash_test_span_ns");
        {
            let _span = SpanGuard::start(&h);
        }
        assert_eq!(h.count(), 1);
        SpanGuard::start(&h).cancel();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn disabled_registry_spans_are_inert() {
        let r = Registry::new();
        let h = r.histogram("dash_test_off_ns");
        r.set_enabled(false);
        {
            let _span = SpanGuard::start(&h);
        }
        assert_eq!(h.count(), 0);
        r.set_enabled(true);
        {
            let _span = SpanGuard::start(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn span_macro_resolves_against_the_global_registry() {
        {
            let _span = span!("dash_test_macro_ns");
        }
        let text = Registry::global().render();
        assert!(text.contains("dash_test_macro_ns_count"));
    }
}
