//! Reading the exposition format back: a minimal parser for the text
//! this crate renders, and the per-stage latency table the load
//! generators print after each run — so a bench log records *where*
//! the p99 lives, not just that it exists.

/// One summary-typed series parsed back from exposition text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummarySeries {
    /// Series name (e.g. `dash_net_handle_ns`).
    pub name: String,
    /// 50th/90th/99th/99.9th percentile values.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
}

/// Parses every summary-typed series out of a Prometheus text
/// exposition document (the format [`render_merged`] writes;
/// unknown lines are skipped, so any conforming document works).
///
/// [`render_merged`]: crate::render_merged
pub fn parse_summaries(text: &str) -> Vec<SummarySeries> {
    fn find(series: &mut Vec<SummarySeries>, name: &str) -> usize {
        match series.iter().position(|s| s.name == name) {
            Some(at) => at,
            None => {
                series.push(SummarySeries {
                    name: name.to_string(),
                    p50: 0,
                    p90: 0,
                    p99: 0,
                    p999: 0,
                    count: 0,
                    sum: 0,
                });
                series.len() - 1
            }
        }
    }
    let mut series: Vec<SummarySeries> = Vec::new();
    let mut summaries: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, kind)) = rest.split_once(' ') {
                if kind.trim() == "summary" {
                    summaries.push(name.to_string());
                }
            }
            continue;
        }
        let Some((series_part, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.trim().parse::<u64>() else {
            continue;
        };
        if let Some((name, labels)) = series_part.split_once('{') {
            if !summaries.iter().any(|s| s == name) {
                continue;
            }
            let at = find(&mut series, name);
            match labels.trim_end_matches('}') {
                "quantile=\"0.5\"" => series[at].p50 = value,
                "quantile=\"0.9\"" => series[at].p90 = value,
                "quantile=\"0.99\"" => series[at].p99 = value,
                "quantile=\"0.999\"" => series[at].p999 = value,
                _ => {}
            }
        } else if let Some(name) = series_part.strip_suffix("_sum") {
            if summaries.iter().any(|s| s == name) {
                let at = find(&mut series, name);
                series[at].sum = value;
            }
        } else if let Some(name) = series_part.strip_suffix("_count") {
            if summaries.iter().any(|s| s == name) {
                let at = find(&mut series, name);
                series[at].count = value;
            }
        }
    }
    series
}

/// Renders the duration summaries (`*_ns` series with samples) as an
/// aligned per-stage latency table, slowest p99 first — what the load
/// generators print after a closed-loop run.
pub fn stage_table(series: &[SummarySeries]) -> String {
    let mut rows: Vec<&SummarySeries> = series
        .iter()
        .filter(|s| s.name.ends_with("_ns") && s.count > 0)
        .collect();
    if rows.is_empty() {
        return String::from("(no stage latency series recorded)\n");
    }
    rows.sort_by(|a, b| b.p99.cmp(&a.p99).then_with(|| a.name.cmp(&b.name)));
    let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
    let mut out = format!(
        "{:<36} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "stage", "count", "p50 µs", "p90 µs", "p99 µs", "p999 µs"
    );
    for row in rows {
        out.push_str(&format!(
            "{:<36} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            row.name,
            row.count,
            us(row.p50),
            us(row.p90),
            us(row.p99),
            us(row.p999),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn parses_what_render_writes() {
        let r = Registry::new();
        let h = r.histogram("dash_test_stage_ns");
        for v in [100u64, 200, 300, 4000] {
            h.record(v);
        }
        r.counter("dash_test_total").add(7);
        let parsed = parse_summaries(&r.render());
        assert_eq!(parsed.len(), 1, "counters are not summaries");
        let s = &parsed[0];
        assert_eq!(s.name, "dash_test_stage_ns");
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 4600);
        assert!(s.p50 > 0 && s.p999 >= s.p99 && s.p99 >= s.p50);
    }

    #[test]
    fn table_sorts_by_p99_and_skips_empty_series() {
        let rows = vec![
            SummarySeries {
                name: "dash_a_ns".into(),
                p50: 10,
                p90: 20,
                p99: 30,
                p999: 40,
                count: 5,
                sum: 100,
            },
            SummarySeries {
                name: "dash_b_ns".into(),
                p50: 100,
                p90: 200,
                p99: 300,
                p999: 400,
                count: 5,
                sum: 1000,
            },
            SummarySeries {
                name: "dash_empty_ns".into(),
                p50: 0,
                p90: 0,
                p99: 0,
                p999: 0,
                count: 0,
                sum: 0,
            },
        ];
        let table = stage_table(&rows);
        assert!(table.find("dash_b_ns").unwrap() < table.find("dash_a_ns").unwrap());
        assert!(!table.contains("dash_empty_ns"));
    }
}
