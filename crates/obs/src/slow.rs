//! The slow-query log: a bounded, always-sorted record of the worst
//! requests the process served, each with its per-stage latency
//! breakdown — the thing you read when the p99 moved and the
//! histograms only say *that* it moved, not *which requests* paid it.

use std::sync::Mutex;

use crate::span::TraceId;

/// One captured slow request.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// The request's trace id (see [`TraceId`]).
    pub trace: TraceId,
    /// The route served (`GET /search`, …).
    pub route: String,
    /// End-to-end nanoseconds.
    pub total_ns: u64,
    /// Stage breakdown in pipeline order: (stage name, nanoseconds).
    pub stages: Vec<(&'static str, u64)>,
}

/// Keeps the `capacity` worst requests seen so far, ordered
/// worst-first. [`SlowLog::record`] is a short critical section (one
/// comparison in the common fast-request case); reads snapshot.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    /// A log retaining the `capacity` slowest requests.
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Offers one finished request. Kept only if the log has room or
    /// the request is slower than the current fastest entry.
    pub fn record(&self, entry: SlowEntry) {
        let mut entries = self.entries.lock().expect("slow log poisoned");
        if entries.len() >= self.capacity
            && entries
                .last()
                .is_some_and(|worst| entry.total_ns <= worst.total_ns)
        {
            return;
        }
        let at = entries
            .binary_search_by(|e| entry.total_ns.cmp(&e.total_ns))
            .unwrap_or_else(|at| at);
        entries.insert(at, entry);
        entries.truncate(self.capacity);
    }

    /// The current worst-first entries.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        self.entries.lock().expect("slow log poisoned").clone()
    }

    /// Renders the log as a JSON array, worst request first — the
    /// `GET /debug/slow` body. Integer fields and fixed key order
    /// keep equal states byte-identical, matching the serving
    /// layer's serialization discipline.
    pub fn render_json(&self) -> String {
        let entries = self.snapshot();
        let mut out = String::from("[");
        for (i, entry) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"trace\":\"{}\",\"route\":\"{}\",\"total_ns\":{},\"stages\":{{",
                entry.trace,
                entry.route.replace('"', "'"),
                entry.total_ns
            ));
            for (j, (stage, ns)) in entry.stages.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{stage}\":{ns}"));
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(total_ns: u64) -> SlowEntry {
        SlowEntry {
            trace: TraceId(total_ns),
            route: "GET /search".to_string(),
            total_ns,
            stages: vec![("handle_ns", total_ns / 2), ("write_ns", total_ns / 4)],
        }
    }

    #[test]
    fn keeps_the_worst_n_in_order() {
        let log = SlowLog::new(3);
        for total in [50, 10, 99, 5, 70, 60] {
            log.record(entry(total));
        }
        let kept: Vec<u64> = log.snapshot().iter().map(|e| e.total_ns).collect();
        assert_eq!(kept, vec![99, 70, 60]);
    }

    #[test]
    fn json_rendering_is_byte_stable_and_attributes_stages() {
        let log = SlowLog::new(2);
        log.record(entry(1000));
        let one = log.render_json();
        assert_eq!(one, log.render_json());
        assert!(one.contains("\"total_ns\":1000"));
        assert!(one.contains("\"handle_ns\":500"));
        assert!(one.contains("\"write_ns\":250"));
        assert!(one.starts_with('[') && one.ends_with(']'));
    }
}
