//! `dash-obs` — observability for the Dash stack, hand-rolled in pure
//! `std` like every other workspace dependency (the build environment
//! has no registry access).
//!
//! Four pieces, each usable alone:
//!
//! * **Histograms** ([`Histogram`]): lock-free log-linear bucket
//!   arrays (`AtomicU64`, 32 sub-buckets per octave → ≤3.1% relative
//!   quantization error over the whole `u64` range), with mergeable
//!   [`HistogramSnapshot`]s and exact nearest-rank
//!   p50/p90/p99/p999 extraction. See [`hist`] for the bucket math.
//! * **Counters and gauges** ([`Counter`], [`Gauge`]): `Relaxed`
//!   atomics behind a named [`Registry`] — per-server instances for
//!   the serving layers (tests run many servers per process and
//!   `/stats` must stay per-instance), [`Registry::global`] for
//!   layers with no instance boundary (sharded search, replication
//!   plumbing, ingest).
//! * **Spans** ([`SpanGuard`], [`span!`], [`TraceId`]): RAII stage
//!   timers recording elapsed ns into a histogram on drop, with a
//!   disabled-registry fast path of one bool load (priced <1µs by the
//!   `obs` bench suite; measured tens of ns).
//! * **Exposition** ([`render_merged`], [`expo`]): byte-stable
//!   Prometheus text rendering (histograms as summaries), plus a
//!   parser and the per-stage latency table the load generators print.
//!
//! Naming convention across the stack: `dash_<layer>_<name>` with
//! `_total` (counters), `_ns` (duration histograms; the wire carries
//! `<name>_ns{quantile}` / `_ns_sum` / `_ns_count`), bare names for
//! gauges. The slow-query log ([`SlowLog`]) backs `GET /debug/slow`
//! on the HTTP front-end; the registry backs `GET /metrics`.

pub mod expo;
pub mod hist;
mod registry;
mod slow;
mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{render_merged, Counter, Gauge, Metric, Registry};
pub use slow::{SlowEntry, SlowLog};
pub use span::{SpanGuard, TraceId};
