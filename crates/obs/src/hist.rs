//! Lock-free log-linear latency histograms.
//!
//! ## Bucket math
//!
//! Values are `u64` (nanoseconds by convention). The bucket layout is
//! HdrHistogram-style log-linear with [`SUB_BITS`] = 5 bits of
//! sub-bucket resolution: values below 32 each get their own bucket
//! (exact), and every octave above that is split into 32 linear
//! sub-buckets, so the relative quantization error is bounded by
//! 1/32 ≈ 3.1% everywhere. With 59 octaves (the most significant bit
//! of a `u64` ranges 5..=63 above the linear region) the whole `u64`
//! range fits in [`BUCKETS`] = 1920 buckets — small enough for one
//! contiguous `AtomicU64` array, cheap enough to snapshot by copying.
//!
//! For a value `v ≥ 32` with most significant bit `m`:
//!
//! ```text
//! index(v) = (m - 5) * 32 + 32 + ((v >> (m - 5)) - 32)
//! ```
//!
//! and the inverse (the smallest value mapping to bucket `i ≥ 32`):
//!
//! ```text
//! lower_bound(i) = (32 + (i - 32) % 32) << ((i - 32) / 32)
//! ```
//!
//! There is no overflow bucket because there is no overflow: the
//! layout covers all of `u64`, `u64::MAX` lands in bucket 1919.
//!
//! ## Concurrency
//!
//! [`Histogram::record`] is three `Relaxed` `fetch_add`s (bucket,
//! sum, count) — no locks, no CAS loops, safe from any number of
//! threads. [`Histogram::snapshot`] reads the buckets without
//! stopping writers; a snapshot is therefore a consistent-enough view
//! (each bucket exact at some instant during the copy), which is the
//! standard trade for never stalling the hot path. Percentiles are
//! extracted from snapshots by an exact nearest-rank walk over the
//! cumulative bucket counts, so two snapshots with equal buckets
//! yield byte-identical percentile answers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Bits of linear sub-bucket resolution per octave.
pub const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (`2^SUB_BITS`).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize - 1) * SUB_BUCKETS + SUB_BUCKETS;

/// The bucket a value lands in. Total order preserving: `a <= b`
/// implies `index(a) <= index(b)`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    ((msb - SUB_BITS) as usize) * SUB_BUCKETS + SUB_BUCKETS + ((v >> shift) as usize - SUB_BUCKETS)
}

/// The smallest value mapping to bucket `i` (the bucket's
/// representative — what percentile extraction reports).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let octave = (i - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = (i - SUB_BUCKETS) % SUB_BUCKETS;
    ((SUB_BUCKETS + sub) as u64) << octave
}

/// A lock-free log-linear histogram of `u64` samples (nanoseconds by
/// convention). See the module docs for the bucket math.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
    /// Shared with the owning [`Registry`](crate::Registry) (or
    /// private when standalone): span guards check this before paying
    /// for `Instant::now`.
    enabled: Arc<AtomicBool>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty, enabled, standalone histogram.
    pub fn new() -> Histogram {
        Histogram::with_enabled(Arc::new(AtomicBool::new(true)))
    }

    /// An empty histogram sharing an enabled flag (how a registry
    /// hands every histogram its kill switch).
    pub(crate) fn with_enabled(enabled: Arc<AtomicBool>) -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            enabled,
        }
    }

    /// Whether recording is live (span guards skip clock reads when
    /// not).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one sample. Lock-free; callable from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets, mergeable and queryable.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a histogram's state: mergeable (shard or
/// per-thread histograms aggregate by bucket-wise addition) and
/// queryable for exact nearest-rank percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity for [`merge`](Self::merge)).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            sum: 0,
        }
    }

    /// Bucket-wise accumulation of another snapshot. The sum wraps on
    /// overflow, matching the atomic `fetch_add` the record path uses
    /// — so merging split snapshots equals recording into one
    /// histogram even at the edges of the `u64` domain.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Total samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all samples in the snapshot.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact nearest-rank `q`-quantile (`0.0 < q <= 1.0`),
    /// reported as the lower bound of the bucket holding the ranked
    /// sample — so the answer is always a value the bucket layout can
    /// represent, and `bucket_index(quantile(q))` equals the bucket
    /// of the true ranked sample (the oracle property the obs tier
    /// asserts). Returns 0 on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Nearest-rank: the ceil(q*n)-th smallest sample, 1-based.
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(i);
            }
        }
        bucket_lower_bound(BUCKETS - 1)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_inverts() {
        // The linear region is exact.
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
        // Every bucket's lower bound maps back to itself.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i, "bucket {i}");
        }
        // Monotone across octave boundaries and to the top.
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            65,
            100,
            1 << 20,
            (1 << 20) + 1,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for pair in probes.windows(2) {
            assert!(bucket_index(pair[0]) <= bucket_index(pair[1]));
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded_by_sub_bucket_width() {
        for v in [100u64, 999, 12_345, 1 << 30, 987_654_321_000] {
            let lb = bucket_lower_bound(bucket_index(v));
            assert!(lb <= v);
            // Quantization error under 1/32 of the value.
            assert!(v - lb <= v / 32, "v={v} lb={lb}");
        }
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        // p50 of 1..=1000 is 500 (nearest-rank); answers are bucket
        // lower bounds so compare at bucket granularity.
        assert_eq!(bucket_index(s.p50()), bucket_index(500));
        assert_eq!(bucket_index(s.p99()), bucket_index(990));
        assert_eq!(bucket_index(s.p999()), bucket_index(999));
        assert_eq!(HistogramSnapshot::empty().p50(), 0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            whole.record(v * 3);
        }
        for v in 0..500u64 {
            b.record(v * 7 + 1);
            whole.record(v * 7 + 1);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn recording_is_safe_under_contention() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 97);
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.snapshot().count(), 80_000);
    }
}
