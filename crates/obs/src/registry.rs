//! Counters, gauges, and the [`Registry`] that names them and renders
//! Prometheus text exposition.
//!
//! ## Naming conventions
//!
//! Series are named `dash_<layer>_<name>` with the conventional
//! suffixes: `_total` for monotonic counters, `_ns` for duration
//! histograms (rendered as summaries, so the wire carries
//! `<name>_ns{quantile="…"}`, `<name>_ns_sum` and `<name>_ns_count`),
//! and no suffix for gauges. Layers in use: `net`, `serve`, `shard`,
//! `repl`, `router`, `ingest`.
//!
//! ## Per-instance vs process-global
//!
//! A [`Registry`] is a first-class value: serving stacks that run
//! several servers in one process (every integration test does) give
//! each server its own, so `/stats` and `/metrics` stay per-instance.
//! [`Registry::global`] is the process-wide default used by layers
//! with no natural instance boundary (sharded search internals,
//! replication plumbing, mapreduce ingest) and by the
//! [`span!`](crate::span!) macro. An HTTP endpoint renders its own
//! registry merged with the global one via [`render_merged`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter (`Relaxed` atomics — safe and
/// lock-free from any thread).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed standalone counter.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depths, lags).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed standalone gauge.
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero (concurrent decrements past
    /// zero clamp rather than wrap).
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotonic counter.
    Counter(Arc<Counter>),
    /// An instantaneous value.
    Gauge(Arc<Gauge>),
    /// A latency histogram (rendered as a Prometheus summary).
    Histogram(Arc<Histogram>),
}

/// Names metrics, hands out shared handles, and renders the whole set
/// as Prometheus text exposition. See the module docs for the
/// per-instance vs process-global split.
#[derive(Debug, Default)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// A fresh, enabled registry.
    pub fn new() -> Registry {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-global registry (created enabled on first use).
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Whether recording is live. Only span guards consult this (the
    /// disabled fast path skips the clock reads, which dominate span
    /// cost); counter bumps are cheaper than the check would be.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips recording for every histogram this registry handed out.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The named counter, created on first use. Panics if the name is
    /// already registered as a different kind (a naming bug, not a
    /// runtime condition).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("obs registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("{name} already registered as {other:?}"),
        }
    }

    /// The named gauge, created on first use (same collision rule as
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("obs registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("{name} already registered as {other:?}"),
        }
    }

    /// The named histogram, created on first use (same collision rule
    /// as [`Registry::counter`]). Created histograms share this
    /// registry's enabled flag.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("obs registry poisoned");
        let enabled = Arc::clone(&self.enabled);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::with_enabled(enabled))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("{name} already registered as {other:?}"),
        }
    }

    /// Attaches an existing counter under a name — how a layer that
    /// already owns its counters (the event loop's `Counters`, a
    /// replica's protocol tallies) exposes them without double
    /// bookkeeping. Replaces any previous registration of the name.
    pub fn register_counter(&self, name: &str, counter: Arc<Counter>) {
        self.metrics
            .lock()
            .expect("obs registry poisoned")
            .insert(name.to_string(), Metric::Counter(counter));
    }

    /// Attaches an existing gauge under a name (see
    /// [`Registry::register_counter`]).
    pub fn register_gauge(&self, name: &str, gauge: Arc<Gauge>) {
        self.metrics
            .lock()
            .expect("obs registry poisoned")
            .insert(name.to_string(), Metric::Gauge(gauge));
    }

    /// The current metric set, sorted by name (a copy of the handles,
    /// not the values).
    pub fn collect(&self) -> BTreeMap<String, Metric> {
        self.metrics.lock().expect("obs registry poisoned").clone()
    }

    /// Renders this registry alone as Prometheus text exposition
    /// (see [`render_merged`] for the format contract).
    pub fn render(&self) -> String {
        render_merged(&[self])
    }
}

/// Renders one or more registries as one Prometheus text exposition
/// document. Series are emitted in lexicographic name order with
/// integer values, so two renders of equal state are byte-identical
/// (the same serialization discipline the JSON layer keeps). When the
/// same name appears in several registries, counters and gauges sum
/// and histograms merge bucket-wise — the semantics of "this process
/// saw the union of that work".
///
/// Counters and gauges render as single series; histograms render as
/// summaries: `name{quantile="0.5|0.9|0.99|0.999"}`, `name_sum`,
/// `name_count` — not 1920 per-bucket series, which would bloat every
/// scrape for no extra operational signal.
pub fn render_merged(registries: &[&Registry]) -> String {
    enum Merged {
        Counter(u64),
        Gauge(u64),
        Histogram(HistogramSnapshot),
    }
    let mut merged: BTreeMap<String, Merged> = BTreeMap::new();
    for registry in registries {
        for (name, metric) in registry.collect() {
            match (metric, merged.get_mut(&name)) {
                (Metric::Counter(c), Some(Merged::Counter(v))) => *v += c.get(),
                (Metric::Counter(c), _) => {
                    merged.insert(name, Merged::Counter(c.get()));
                }
                (Metric::Gauge(g), Some(Merged::Gauge(v))) => *v += g.get(),
                (Metric::Gauge(g), _) => {
                    merged.insert(name, Merged::Gauge(g.get()));
                }
                (Metric::Histogram(h), Some(Merged::Histogram(s))) => s.merge(&h.snapshot()),
                (Metric::Histogram(h), _) => {
                    merged.insert(name, Merged::Histogram(h.snapshot()));
                }
            }
        }
    }
    let mut out = String::with_capacity(64 * merged.len());
    for (name, metric) in &merged {
        match metric {
            Merged::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            Merged::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
            Merged::Histogram(s) => {
                out.push_str(&format!("# TYPE {name} summary\n"));
                for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)] {
                    out.push_str(&format!(
                        "{name}{{quantile=\"{label}\"}} {}\n",
                        s.quantile(q)
                    ));
                }
                out.push_str(&format!("{name}_sum {}\n", s.sum()));
                out.push_str(&format!("{name}_count {}\n", s.count()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_or_get_returns_the_same_instance() {
        let r = Registry::new();
        let a = r.counter("dash_test_total");
        let b = r.counter("dash_test_total");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn gauge_sub_saturates() {
        let g = Gauge::new();
        g.set(2);
        g.sub(5);
        assert_eq!(g.get(), 0);
        g.add(7);
        g.sub(3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn rendering_is_sorted_and_byte_stable() {
        let r = Registry::new();
        r.counter("dash_b_total").add(2);
        r.gauge("dash_a_depth").set(5);
        r.histogram("dash_c_ns").record(100);
        let one = r.render();
        let two = r.render();
        assert_eq!(one, two);
        let a = one.find("dash_a_depth").unwrap();
        let b = one.find("dash_b_total").unwrap();
        let c = one.find("dash_c_ns").unwrap();
        assert!(a < b && b < c, "series sorted by name");
        assert!(one.contains("# TYPE dash_c_ns summary"));
        assert!(one.contains("dash_c_ns_count 1"));
        assert!(one.contains("dash_c_ns_sum 100"));
    }

    #[test]
    fn merged_render_sums_counters_and_merges_histograms() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("dash_x_total").add(2);
        b.counter("dash_x_total").add(3);
        a.histogram("dash_y_ns").record(10);
        b.histogram("dash_y_ns").record(20);
        let text = render_merged(&[&a, &b]);
        assert!(text.contains("dash_x_total 5\n"));
        assert!(text.contains("dash_y_ns_count 2\n"));
        assert!(text.contains("dash_y_ns_sum 30\n"));
    }

    #[test]
    fn disabling_a_registry_disables_its_histograms() {
        let r = Registry::new();
        let h = r.histogram("dash_z_ns");
        assert!(h.is_enabled());
        r.set_enabled(false);
        assert!(!h.is_enabled());
    }
}
