//! Property-based tests of relational-algebra laws on random tables.

use proptest::prelude::*;

use dash_relation::{
    join, project, select, sort_by, Aggregation, Column, ColumnType, GroupBy, JoinSpec, Predicate,
    Record, Schema, SortKey, Table, Value,
};

fn left_schema() -> Schema {
    Schema::builder("l")
        .column(Column::new("id", ColumnType::Int))
        .column(Column::new("grp", ColumnType::Int))
        .column(Column::new("text", ColumnType::Str))
        .build()
        .unwrap()
}

fn right_schema() -> Schema {
    Schema::builder("r")
        .column(Column::new("lid", ColumnType::Int))
        .column(Column::new("note", ColumnType::Str))
        .build()
        .unwrap()
}

fn left_table(rows: &[(i64, i64, u8)]) -> Table {
    Table::with_records(
        left_schema(),
        rows.iter().map(|&(id, grp, t)| {
            Record::new(vec![
                Value::Int(id),
                Value::Int(grp),
                Value::str(format!("w{t}")),
            ])
        }),
    )
    .unwrap()
}

fn right_table(rows: &[(i64, u8)]) -> Table {
    Table::with_records(
        right_schema(),
        rows.iter()
            .map(|&(lid, t)| Record::new(vec![Value::Int(lid), Value::str(format!("n{t}"))])),
    )
    .unwrap()
}

proptest! {
    /// σ distributes over ⋈ when the predicate touches only left columns:
    /// select(join(L,R)) == join(select(L),R).
    #[test]
    fn selection_pushdown(
        lrows in prop::collection::vec((0i64..20, 0i64..5, 0u8..4), 0..30),
        rrows in prop::collection::vec((0i64..20, 0u8..4), 0..30),
        bound in 0i64..5,
    ) {
        // Unique left ids (primary-key style) for stable comparison.
        let mut lrows = lrows;
        lrows.sort();
        lrows.dedup_by_key(|r| r.0);
        let l = left_table(&lrows);
        let r = right_table(&rrows);
        let spec = JoinSpec::inner("id", "lid");
        let pred = Predicate::between("grp", 0i64, bound);

        let a = select(&join(&l, &r, &spec).unwrap(), &pred).unwrap();
        let b = join(&select(&l, &pred).unwrap(), &r, &spec).unwrap();
        let mut xs: Vec<_> = a.records().to_vec();
        let mut ys: Vec<_> = b.records().to_vec();
        xs.sort();
        ys.sort();
        prop_assert_eq!(xs, ys);
    }

    /// Left-outer join preserves every left row at least once.
    #[test]
    fn left_outer_preserves_left(
        lrows in prop::collection::vec((0i64..20, 0i64..5, 0u8..4), 1..25),
        rrows in prop::collection::vec((0i64..20, 0u8..4), 0..25),
    ) {
        let mut lrows = lrows;
        lrows.sort();
        lrows.dedup_by_key(|r| r.0);
        let l = left_table(&lrows);
        let r = right_table(&rrows);
        let joined = join(&l, &r, &JoinSpec::left_outer("id", "lid")).unwrap();
        for row in l.iter() {
            let id = row.get(0).unwrap();
            prop_assert!(
                joined.iter().any(|j| j.get(0) == Some(id)),
                "left id {id} lost"
            );
        }
        // And never fewer rows than the inner join.
        let inner = join(&l, &r, &JoinSpec::inner("id", "lid")).unwrap();
        prop_assert!(joined.len() >= inner.len());
        prop_assert!(joined.len() >= l.len());
    }

    /// Projection is idempotent and preserves cardinality.
    #[test]
    fn projection_laws(
        lrows in prop::collection::vec((0i64..50, 0i64..5, 0u8..4), 0..30),
    ) {
        let mut lrows = lrows;
        lrows.sort();
        lrows.dedup_by_key(|r| r.0);
        let l = left_table(&lrows);
        let once = project(&l, &["grp", "text"]).unwrap();
        let twice = project(&once, &["grp", "text"]).unwrap();
        prop_assert_eq!(once.records(), twice.records());
        prop_assert_eq!(once.len(), l.len());
    }

    /// COUNT(*) group-by sums to the table cardinality, and every group
    /// key exists in the source.
    #[test]
    fn group_by_counts_partition(
        lrows in prop::collection::vec((0i64..50, 0i64..5, 0u8..4), 0..40),
    ) {
        let mut lrows = lrows;
        lrows.sort();
        lrows.dedup_by_key(|r| r.0);
        let l = left_table(&lrows);
        let grouped = GroupBy::new(&["grp"])
            .aggregate(Aggregation::count_star("n"))
            .eval(&l)
            .unwrap();
        let total: i64 = grouped
            .iter()
            .map(|r| r.get(1).unwrap().as_int().unwrap())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        prop_assert_eq!(total, l.len() as i64);
    }

    /// Sorting is a permutation and is idempotent.
    #[test]
    fn sort_laws(
        lrows in prop::collection::vec((0i64..50, 0i64..5, 0u8..4), 0..40),
    ) {
        let mut lrows = lrows;
        lrows.sort();
        lrows.dedup_by_key(|r| r.0);
        let l = left_table(&lrows);
        let sorted = sort_by(&l, &[SortKey::asc("grp"), SortKey::desc("id")]).unwrap();
        prop_assert_eq!(sorted.len(), l.len());
        let again = sort_by(&sorted, &[SortKey::asc("grp"), SortKey::desc("id")]).unwrap();
        prop_assert_eq!(sorted.records(), again.records());
        // Verify ordering.
        let keys: Vec<(i64, i64)> = sorted
            .iter()
            .map(|r| {
                (
                    r.get(1).unwrap().as_int().unwrap(),
                    -r.get(0).unwrap().as_int().unwrap(),
                )
            })
            .collect();
        let mut expected = keys.clone();
        expected.sort();
        prop_assert_eq!(keys, expected);
    }
}
