//! Error type for the relational substrate.

use std::fmt;

/// Errors produced by schema construction, table mutation and operator
/// evaluation.
///
/// The type implements [`std::error::Error`] and is `Send + Sync + 'static`
/// so it composes with the error types of the crates layered on top
/// (`dash-sql`, `dash-webapp`, `dash-core`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A column name was referenced that does not exist in the schema.
    UnknownColumn {
        /// The offending column name.
        column: String,
        /// The relation in which the lookup happened.
        relation: String,
    },
    /// A record's arity or column types do not match the target schema.
    SchemaMismatch {
        /// The relation whose schema was violated.
        relation: String,
        /// Human-readable detail of the mismatch.
        detail: String,
    },
    /// A schema was declared with duplicate column names.
    DuplicateColumn {
        /// The duplicated column name.
        column: String,
        /// The relation being declared.
        relation: String,
    },
    /// An insert violated a primary-key uniqueness constraint.
    DuplicateKey {
        /// The relation whose key was violated.
        relation: String,
        /// Rendered key values.
        key: String,
    },
    /// A foreign key referenced a non-existent parent row or relation.
    ForeignKeyViolation {
        /// The child relation.
        relation: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A relation name was not found in the [`Database`](crate::Database).
    UnknownRelation {
        /// The missing relation name.
        relation: String,
    },
    /// Two values of incompatible types were compared or combined.
    TypeMismatch {
        /// Human-readable detail of the operation.
        detail: String,
    },
    /// A value failed to parse from text.
    ParseValue {
        /// The text that failed to parse.
        text: String,
        /// The type it was parsed as.
        expected: String,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::UnknownColumn { column, relation } => {
                write!(f, "unknown column `{column}` in relation `{relation}`")
            }
            RelationError::SchemaMismatch { relation, detail } => {
                write!(f, "schema mismatch in relation `{relation}`: {detail}")
            }
            RelationError::DuplicateColumn { column, relation } => {
                write!(f, "duplicate column `{column}` in relation `{relation}`")
            }
            RelationError::DuplicateKey { relation, key } => {
                write!(f, "duplicate primary key {key} in relation `{relation}`")
            }
            RelationError::ForeignKeyViolation { relation, detail } => {
                write!(
                    f,
                    "foreign key violation in relation `{relation}`: {detail}"
                )
            }
            RelationError::UnknownRelation { relation } => {
                write!(f, "unknown relation `{relation}`")
            }
            RelationError::TypeMismatch { detail } => write!(f, "type mismatch: {detail}"),
            RelationError::ParseValue { text, expected } => {
                write!(f, "cannot parse `{text}` as {expected}")
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = RelationError::UnknownColumn {
            column: "cuisine".into(),
            relation: "restaurant".into(),
        };
        let text = err.to_string();
        assert!(text.starts_with("unknown column"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<RelationError>();
    }

    #[test]
    fn all_variants_render() {
        let variants = vec![
            RelationError::SchemaMismatch {
                relation: "r".into(),
                detail: "arity".into(),
            },
            RelationError::DuplicateColumn {
                column: "c".into(),
                relation: "r".into(),
            },
            RelationError::DuplicateKey {
                relation: "r".into(),
                key: "(1)".into(),
            },
            RelationError::ForeignKeyViolation {
                relation: "r".into(),
                detail: "missing parent".into(),
            },
            RelationError::UnknownRelation {
                relation: "r".into(),
            },
            RelationError::TypeMismatch {
                detail: "int vs str".into(),
            },
            RelationError::ParseValue {
                text: "abc".into(),
                expected: "Int".into(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
