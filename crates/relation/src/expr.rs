//! Selection predicates over records.
//!
//! The paper restricts application queries to conjunctions of simple
//! comparisons `c ⊗ v` with `⊗ ∈ {=, ≥, ≤}` (Definition 1); `BETWEEN` is
//! the ≥/≤ pair. This module models exactly that family, bound to column
//! names and resolved against a [`Schema`] at evaluation time.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::RelationError;
use crate::record::Record;
use crate::schema::Schema;
use crate::value::Value;

/// Comparison operators permitted in a parameterized PSJ query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `>=`
    Ge,
    /// `<=`
    Le,
}

impl CompareOp {
    /// Applies the operator. Numeric `Int`/`Decimal` pairs compare by value.
    /// Comparisons involving NULL are false (SQL three-valued logic
    /// collapsed to boolean, which is what a WHERE clause does).
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        if left.is_null() || right.is_null() {
            return false;
        }
        match self {
            CompareOp::Eq => compare_values(left, right) == std::cmp::Ordering::Equal,
            CompareOp::Ge => compare_values(left, right) != std::cmp::Ordering::Less,
            CompareOp::Le => compare_values(left, right) != std::cmp::Ordering::Greater,
        }
    }
}

fn compare_values(left: &Value, right: &Value) -> std::cmp::Ordering {
    match (left.numeric_cents(), right.numeric_cents()) {
        (Some(a), Some(b)) => a.cmp(&b),
        _ => left.cmp(right),
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ge => ">=",
            CompareOp::Le => "<=",
        };
        f.write_str(s)
    }
}

/// A predicate over a record: a conjunction of column-vs-constant
/// comparisons, plus the special `Between` convenience.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (empty conjunction).
    True,
    /// `column ⊗ value`
    Compare {
        /// Column name resolved against the evaluation schema.
        column: String,
        /// Comparison operator.
        op: CompareOp,
        /// Constant to compare against.
        value: Value,
    },
    /// `column BETWEEN low AND high` (inclusive).
    Between {
        /// Column name resolved against the evaluation schema.
        column: String,
        /// Lower bound (inclusive).
        low: Value,
        /// Upper bound (inclusive).
        high: Value,
    },
    /// Conjunction of sub-predicates.
    And(Vec<Predicate>),
}

impl Predicate {
    /// Convenience constructor for an equality predicate.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CompareOp::Eq,
            value: value.into(),
        }
    }

    /// Convenience constructor for a BETWEEN predicate.
    pub fn between(
        column: impl Into<String>,
        low: impl Into<Value>,
        high: impl Into<Value>,
    ) -> Self {
        Predicate::Between {
            column: column.into(),
            low: low.into(),
            high: high.into(),
        }
    }

    /// Evaluates the predicate against `record` under `schema`.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::UnknownColumn`] when a referenced column is
    /// not part of the schema.
    pub fn eval(&self, schema: &Schema, record: &Record) -> Result<bool, RelationError> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Compare { column, op, value } => {
                let field = record.field(schema, column)?;
                Ok(op.eval(field, value))
            }
            Predicate::Between { column, low, high } => {
                let field = record.field(schema, column)?;
                Ok(CompareOp::Ge.eval(field, low) && CompareOp::Le.eval(field, high))
            }
            Predicate::And(parts) => {
                for p in parts {
                    if !p.eval(schema, record)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    /// All column names referenced by the predicate, in syntactic order.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::True => {}
            Predicate::Compare { column, .. } | Predicate::Between { column, .. } => {
                out.push(column)
            }
            Predicate::And(parts) => {
                for p in parts {
                    p.collect_columns(out);
                }
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::Compare { column, op, value } => write!(f, "{column} {op} {value}"),
            Predicate::Between { column, low, high } => {
                write!(f, "{column} BETWEEN {low} AND {high}")
            }
            Predicate::And(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema};

    fn schema() -> Schema {
        Schema::builder("restaurant")
            .column(Column::new("cuisine", ColumnType::Str))
            .column(Column::new("budget", ColumnType::Int))
            .build()
            .unwrap()
    }

    fn rec(cuisine: &str, budget: i64) -> Record {
        Record::new(vec![Value::str(cuisine), Value::Int(budget)])
    }

    #[test]
    fn eq_and_between() {
        let s = schema();
        let p = Predicate::And(vec![
            Predicate::eq("cuisine", "American"),
            Predicate::between("budget", 10i64, 15i64),
        ]);
        assert!(p.eval(&s, &rec("American", 12)).unwrap());
        assert!(!p.eval(&s, &rec("American", 18)).unwrap());
        assert!(!p.eval(&s, &rec("Thai", 12)).unwrap());
    }

    #[test]
    fn between_is_inclusive() {
        let s = schema();
        let p = Predicate::between("budget", 10i64, 15i64);
        assert!(p.eval(&s, &rec("x", 10)).unwrap());
        assert!(p.eval(&s, &rec("x", 15)).unwrap());
        assert!(!p.eval(&s, &rec("x", 9)).unwrap());
        assert!(!p.eval(&s, &rec("x", 16)).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let r = Record::new(vec![Value::Null, Value::Int(10)]);
        assert!(!Predicate::eq("cuisine", "American").eval(&s, &r).unwrap());
    }

    #[test]
    fn cross_numeric_compare() {
        let s = Schema::builder("r")
            .column(Column::new("price", ColumnType::Decimal))
            .build()
            .unwrap();
        let r = Record::new(vec![Value::decimal(1250)]);
        // 12.50 between ints 10 and 15.
        assert!(Predicate::between("price", 10i64, 15i64)
            .eval(&s, &r)
            .unwrap());
        assert!(!Predicate::between("price", 13i64, 15i64)
            .eval(&s, &r)
            .unwrap());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        assert!(Predicate::eq("nope", 1i64).eval(&s, &rec("x", 1)).is_err());
    }

    #[test]
    fn columns_collects_in_order() {
        let p = Predicate::And(vec![
            Predicate::eq("cuisine", "a"),
            Predicate::between("budget", 1i64, 2i64),
        ]);
        assert_eq!(p.columns(), vec!["cuisine", "budget"]);
        assert!(Predicate::True.columns().is_empty());
    }

    #[test]
    fn display_roundtrip_shape() {
        let p = Predicate::And(vec![
            Predicate::eq("cuisine", "American"),
            Predicate::between("budget", 10i64, 15i64),
        ]);
        assert_eq!(
            p.to_string(),
            "cuisine = American AND budget BETWEEN 10 AND 15"
        );
    }
}
