//! Projection (π).

use crate::error::RelationError;
use crate::table::Table;

/// Projects `table` onto `columns`, preserving record order and duplicates
/// (SQL `SELECT a, b, ...` bag semantics — the paper's fragments rely on
/// duplicates surviving projection so that keyword occurrence counts are
/// correct).
///
/// # Errors
///
/// Returns [`RelationError::UnknownColumn`] when a name is absent.
///
/// ```
/// use dash_relation::{ops::project::project, Column, ColumnType, Record, Schema, Table, Value};
/// # fn main() -> Result<(), dash_relation::RelationError> {
/// let schema = Schema::builder("r")
///     .column(Column::new("a", ColumnType::Int))
///     .column(Column::new("b", ColumnType::Str))
///     .build()?;
/// let table = Table::with_records(schema, vec![
///     Record::new(vec![Value::Int(1), Value::str("x")]),
/// ])?;
/// let p = project(&table, &["b"])?;
/// assert_eq!(p.records()[0].values(), &[Value::str("x")]);
/// # Ok(())
/// # }
/// ```
pub fn project(table: &Table, columns: &[&str]) -> Result<Table, RelationError> {
    let schema = table.schema().project(columns)?;
    let indices: Vec<usize> = columns
        .iter()
        .map(|c| table.schema().index_of(c))
        .collect::<Result<_, _>>()?;
    let mut out = Table::new(schema);
    for r in table.iter() {
        // Bag semantics: do not dedupe, and the projected schema never
        // carries a primary key, so inserts cannot collide.
        out.insert(r.take(&indices))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{Column, ColumnType, Schema};
    use crate::value::Value;

    fn table() -> Table {
        let schema = Schema::builder("r")
            .column(Column::new("a", ColumnType::Int))
            .column(Column::new("b", ColumnType::Str))
            .column(Column::new("c", ColumnType::Int))
            .build()
            .unwrap();
        Table::with_records(
            schema,
            vec![
                Record::new(vec![Value::Int(1), Value::str("x"), Value::Int(7)]),
                Record::new(vec![Value::Int(2), Value::str("x"), Value::Int(7)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn keeps_duplicates() {
        let p = project(&table(), &["b", "c"]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.records()[0], p.records()[1]);
    }

    #[test]
    fn reorders_columns() {
        let p = project(&table(), &["c", "a"]).unwrap();
        assert_eq!(p.records()[0].values(), &[Value::Int(7), Value::Int(1)]);
    }

    #[test]
    fn unknown_column() {
        assert!(project(&table(), &["zzz"]).is_err());
    }
}
