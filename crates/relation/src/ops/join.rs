//! Hash joins: inner and left-outer.
//!
//! The paper's application queries join operand relations "through inner-
//! or outer-joins" (Definition 1); the running example's `Search` uses
//! `restaurant LEFT JOIN comment` so restaurants with no comments still
//! appear in db-pages.

use std::collections::HashMap;

use crate::error::RelationError;
use crate::record::Record;
use crate::table::Table;
use crate::value::Value;

/// The join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Inner equi-join: unmatched rows on either side are dropped.
    Inner,
    /// Left outer equi-join: unmatched left rows survive, right columns
    /// padded with NULL.
    LeftOuter,
}

/// An equi-join specification: which columns to match and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// Column in the left relation.
    pub left_column: String,
    /// Column in the right relation.
    pub right_column: String,
    /// Inner or left-outer.
    pub kind: JoinKind,
}

impl JoinSpec {
    /// Creates an inner-join spec.
    pub fn inner(left: impl Into<String>, right: impl Into<String>) -> Self {
        JoinSpec {
            left_column: left.into(),
            right_column: right.into(),
            kind: JoinKind::Inner,
        }
    }

    /// Creates a left-outer-join spec.
    pub fn left_outer(left: impl Into<String>, right: impl Into<String>) -> Self {
        JoinSpec {
            left_column: left.into(),
            right_column: right.into(),
            kind: JoinKind::LeftOuter,
        }
    }
}

/// Hash-joins `left` and `right` on the specified columns.
///
/// The result schema is `left.schema().join(right.schema())`; colliding
/// right-hand column names are prefixed with the right relation name.
/// NULL join keys never match (SQL semantics), but with `LeftOuter` a left
/// row whose key is NULL still survives NULL-padded.
///
/// # Errors
///
/// Returns [`RelationError::UnknownColumn`] when a join column is missing
/// from its side.
///
/// ```
/// use dash_relation::{join, JoinSpec, Column, ColumnType, Record, Schema, Table, Value};
/// # fn main() -> Result<(), dash_relation::RelationError> {
/// let l = Table::with_records(
///     Schema::builder("l").column(Column::new("id", ColumnType::Int)).build()?,
///     vec![Record::new(vec![Value::Int(1)]), Record::new(vec![Value::Int(2)])],
/// )?;
/// let r = Table::with_records(
///     Schema::builder("r").column(Column::new("lid", ColumnType::Int)).build()?,
///     vec![Record::new(vec![Value::Int(1)])],
/// )?;
/// let joined = join(&l, &r, &JoinSpec::left_outer("id", "lid"))?;
/// assert_eq!(joined.len(), 2); // id=2 survives with NULL padding
/// # Ok(())
/// # }
/// ```
pub fn join(left: &Table, right: &Table, spec: &JoinSpec) -> Result<Table, RelationError> {
    let left_idx = left.schema().index_of(&spec.left_column)?;
    let right_idx = right.schema().index_of(&spec.right_column)?;

    // Build hash table over the right side.
    let mut build: HashMap<&Value, Vec<&Record>> = HashMap::new();
    for r in right.iter() {
        let key = &r.values()[right_idx];
        if key.is_null() {
            continue;
        }
        build.entry(key).or_default().push(r);
    }

    let out_schema = left.schema().join(right.schema());
    let right_arity = right.schema().arity();
    let mut out = Table::new(out_schema);
    for l in left.iter() {
        let key = &l.values()[left_idx];
        let matches = if key.is_null() { None } else { build.get(key) };
        match matches {
            Some(rs) => {
                for r in rs {
                    out.insert(l.concat(r))?;
                }
            }
            None => {
                if spec.kind == JoinKind::LeftOuter {
                    out.insert(l.concat_nulls(right_arity))?;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema};

    fn restaurants() -> Table {
        let schema = Schema::builder("restaurant")
            .column(Column::new("rid", ColumnType::Int))
            .column(Column::new("name", ColumnType::Str))
            .build()
            .unwrap();
        Table::with_records(
            schema,
            vec![
                Record::new(vec![Value::Int(1), Value::str("Burger Queen")]),
                Record::new(vec![Value::Int(3), Value::str("Wandy's")]),
                Record::new(vec![Value::Int(5), Value::str("Thaifood")]),
            ],
        )
        .unwrap()
    }

    fn comments() -> Table {
        let schema = Schema::builder("comment")
            .column(Column::new("cid", ColumnType::Int))
            .column(Column::new("rid", ColumnType::Int))
            .column(Column::new("text", ColumnType::Str))
            .build()
            .unwrap();
        Table::with_records(
            schema,
            vec![
                Record::new(vec![
                    Value::Int(201),
                    Value::Int(1),
                    Value::str("Burger experts"),
                ]),
                Record::new(vec![
                    Value::Int(202),
                    Value::Int(3),
                    Value::str("Unique burger"),
                ]),
                Record::new(vec![
                    Value::Int(203),
                    Value::Int(3),
                    Value::str("Bad fries"),
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn inner_join_matches() {
        let j = join(&restaurants(), &comments(), &JoinSpec::inner("rid", "rid")).unwrap();
        // restaurant 1 matches once, 3 twice, 5 not at all.
        assert_eq!(j.len(), 3);
        assert!(j.schema().contains("comment.rid"));
    }

    #[test]
    fn left_outer_pads_unmatched() {
        let j = join(
            &restaurants(),
            &comments(),
            &JoinSpec::left_outer("rid", "rid"),
        )
        .unwrap();
        assert_eq!(j.len(), 4); // Thaifood survives padded
        let padded: Vec<&Record> = j
            .iter()
            .filter(|r| r.get(0) == Some(&Value::Int(5)))
            .collect();
        assert_eq!(padded.len(), 1);
        assert!(padded[0].get(2).unwrap().is_null());
        assert!(padded[0].get(4).unwrap().is_null());
    }

    #[test]
    fn null_keys_never_match_inner() {
        let schema = Schema::builder("l")
            .column(Column::new("k", ColumnType::Int))
            .build()
            .unwrap();
        let l = Table::with_records(schema.clone(), vec![Record::new(vec![Value::Null])]).unwrap();
        let r = Table::with_records(
            Schema::builder("r")
                .column(Column::new("k", ColumnType::Int))
                .build()
                .unwrap(),
            vec![Record::new(vec![Value::Null])],
        )
        .unwrap();
        let inner = join(&l, &r, &JoinSpec::inner("k", "k")).unwrap();
        assert!(inner.is_empty());
        let outer = join(&l, &r, &JoinSpec::left_outer("k", "k")).unwrap();
        assert_eq!(outer.len(), 1);
    }

    #[test]
    fn join_is_multiplicative_on_duplicates() {
        let schema_l = Schema::builder("l")
            .column(Column::new("k", ColumnType::Int))
            .build()
            .unwrap();
        let schema_r = Schema::builder("r")
            .column(Column::new("k", ColumnType::Int))
            .build()
            .unwrap();
        let l = Table::with_records(
            schema_l,
            vec![
                Record::new(vec![Value::Int(1)]),
                Record::new(vec![Value::Int(1)]),
            ],
        )
        .unwrap();
        let r = Table::with_records(
            schema_r,
            vec![
                Record::new(vec![Value::Int(1)]),
                Record::new(vec![Value::Int(1)]),
                Record::new(vec![Value::Int(1)]),
            ],
        )
        .unwrap();
        let j = join(&l, &r, &JoinSpec::inner("k", "k")).unwrap();
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn unknown_join_column_errors() {
        assert!(join(&restaurants(), &comments(), &JoinSpec::inner("zzz", "rid")).is_err());
        assert!(join(&restaurants(), &comments(), &JoinSpec::inner("rid", "zzz")).is_err());
    }
}
