//! Sorting — fragments are pre-sorted on query-parameter values before
//! fragment-graph insertion (Section VI-A), and inverted-list postings are
//! TF-ordered.

use crate::error::RelationError;
use crate::table::Table;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortOrder {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// One sort key: a column plus a direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    /// Column name.
    pub column: String,
    /// Direction.
    pub order: SortOrder,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            order: SortOrder::Asc,
        }
    }

    /// Descending key.
    pub fn desc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            order: SortOrder::Desc,
        }
    }
}

/// Stable-sorts `table` by `keys` (leftmost key most significant).
///
/// # Errors
///
/// Returns [`RelationError::UnknownColumn`] when a key column is absent.
pub fn sort_by(table: &Table, keys: &[SortKey]) -> Result<Table, RelationError> {
    let idx: Vec<(usize, SortOrder)> = keys
        .iter()
        .map(|k| Ok((table.schema().index_of(&k.column)?, k.order)))
        .collect::<Result<_, RelationError>>()?;
    let mut records: Vec<_> = table.records().to_vec();
    records.sort_by(|a, b| {
        for &(i, order) in &idx {
            let cmp = a.values()[i].cmp(&b.values()[i]);
            let cmp = match order {
                SortOrder::Asc => cmp,
                SortOrder::Desc => cmp.reverse(),
            };
            if cmp != std::cmp::Ordering::Equal {
                return cmp;
            }
        }
        std::cmp::Ordering::Equal
    });
    // Rebuild without re-checking keys (records came from a valid table and
    // sorting cannot introduce duplicates), so construct directly.
    let mut out = Table::new(table.schema().clone());
    for r in records {
        // A sorted copy of a keyed table re-inserts the same unique keys.
        out.insert(r)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{Column, ColumnType, Schema};
    use crate::value::Value;

    fn table() -> Table {
        let schema = Schema::builder("r")
            .column(Column::new("a", ColumnType::Str))
            .column(Column::new("b", ColumnType::Int))
            .build()
            .unwrap();
        Table::with_records(
            schema,
            vec![
                Record::new(vec![Value::str("x"), Value::Int(2)]),
                Record::new(vec![Value::str("y"), Value::Int(1)]),
                Record::new(vec![Value::str("x"), Value::Int(1)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn multi_key_sort() {
        let sorted = sort_by(&table(), &[SortKey::asc("a"), SortKey::asc("b")]).unwrap();
        let got: Vec<(String, i64)> = sorted
            .iter()
            .map(|r| {
                (
                    r.get(0).unwrap().as_str().unwrap().to_string(),
                    r.get(1).unwrap().as_int().unwrap(),
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![("x".into(), 1), ("x".into(), 2), ("y".into(), 1),]
        );
    }

    #[test]
    fn descending() {
        let sorted = sort_by(&table(), &[SortKey::desc("b")]).unwrap();
        let got: Vec<i64> = sorted
            .iter()
            .map(|r| r.get(1).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(got, vec![2, 1, 1]);
    }

    #[test]
    fn unknown_column() {
        assert!(sort_by(&table(), &[SortKey::asc("zzz")]).is_err());
    }
}
