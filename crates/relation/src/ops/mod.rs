//! Relational operators: project, select, join (inner/left-outer),
//! group-by aggregation, and sort.
//!
//! These are the building blocks of the paper's parameterized
//! project-select-join queries (Definition 1) and of the crawling queries
//! in Section V. All operators work on ([`Schema`](crate::Schema),
//! records) pairs and return fresh [`Table`](crate::Table)s.

pub mod aggregate;
pub mod join;
pub mod project;
pub mod select;
pub mod sort;
