//! Selection (σ).

use crate::error::RelationError;
use crate::expr::Predicate;
use crate::table::Table;

/// Filters `table` by `predicate`, preserving order.
///
/// # Errors
///
/// Returns [`RelationError::UnknownColumn`] if the predicate references an
/// absent column.
///
/// ```
/// use dash_relation::{ops::select::select, Column, ColumnType, Predicate, Record, Schema, Table, Value};
/// # fn main() -> Result<(), dash_relation::RelationError> {
/// let schema = Schema::builder("r")
///     .column(Column::new("budget", ColumnType::Int))
///     .build()?;
/// let t = Table::with_records(schema, vec![
///     Record::new(vec![Value::Int(10)]),
///     Record::new(vec![Value::Int(18)]),
/// ])?;
/// let filtered = select(&t, &Predicate::between("budget", 10i64, 15i64))?;
/// assert_eq!(filtered.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn select(table: &Table, predicate: &Predicate) -> Result<Table, RelationError> {
    let mut out = Table::new(table.schema().clone());
    for r in table.iter() {
        if predicate.eval(table.schema(), r)? {
            out.insert(r.clone())?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{Column, ColumnType, Schema};
    use crate::value::Value;

    #[test]
    fn filters_and_preserves_order() {
        let schema = Schema::builder("r")
            .column(Column::new("x", ColumnType::Int))
            .build()
            .unwrap();
        let t =
            Table::with_records(schema, (0..10).map(|i| Record::new(vec![Value::Int(i)]))).unwrap();
        let s = select(&t, &Predicate::between("x", 3i64, 6i64)).unwrap();
        let got: Vec<i64> = s
            .iter()
            .map(|r| r.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(got, vec![3, 4, 5, 6]);
    }

    #[test]
    fn true_predicate_is_identity() {
        let schema = Schema::builder("r")
            .column(Column::new("x", ColumnType::Int))
            .build()
            .unwrap();
        let t = Table::with_records(schema, vec![Record::new(vec![Value::Int(1)])]).unwrap();
        assert_eq!(select(&t, &Predicate::True).unwrap().len(), 1);
    }
}
