//! Group-by aggregation (the paper's "aggregate query",
//! `c_i, j_i G count(*) as θ_i (R_i)` from Section V-B).

use std::collections::HashMap;

use crate::error::RelationError;
use crate::record::Record;
use crate::schema::{Column, ColumnType, Schema};
use crate::table::Table;
use crate::value::Value;

/// Aggregate functions supported by [`GroupBy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — the only aggregate the integrated crawl algorithm
    /// needs (θ_i duplicate counts).
    CountStar,
    /// `SUM(column)` over Int columns.
    SumInt,
    /// `MIN(column)`.
    Min,
    /// `MAX(column)`.
    Max,
}

/// One aggregation output: a function, an optional input column and the
/// output column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aggregation {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column (`None` for `COUNT(*)`).
    pub input: Option<String>,
    /// Name of the output column.
    pub output: String,
}

impl Aggregation {
    /// `COUNT(*) AS output`.
    pub fn count_star(output: impl Into<String>) -> Self {
        Aggregation {
            func: AggFunc::CountStar,
            input: None,
            output: output.into(),
        }
    }

    /// `SUM(input) AS output` over an Int column.
    pub fn sum(input: impl Into<String>, output: impl Into<String>) -> Self {
        Aggregation {
            func: AggFunc::SumInt,
            input: Some(input.into()),
            output: output.into(),
        }
    }

    /// `MIN(input) AS output`.
    pub fn min(input: impl Into<String>, output: impl Into<String>) -> Self {
        Aggregation {
            func: AggFunc::Min,
            input: Some(input.into()),
            output: output.into(),
        }
    }

    /// `MAX(input) AS output`.
    pub fn max(input: impl Into<String>, output: impl Into<String>) -> Self {
        Aggregation {
            func: AggFunc::Max,
            input: Some(input.into()),
            output: output.into(),
        }
    }
}

/// A group-by aggregation plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupBy {
    /// Grouping columns, in output order.
    pub keys: Vec<String>,
    /// Aggregations appended after the keys.
    pub aggregations: Vec<Aggregation>,
}

impl GroupBy {
    /// Creates a plan grouping on `keys`.
    pub fn new(keys: &[&str]) -> Self {
        GroupBy {
            keys: keys.iter().map(|s| s.to_string()).collect(),
            aggregations: Vec::new(),
        }
    }

    /// Adds an aggregation (builder style).
    pub fn aggregate(mut self, agg: Aggregation) -> Self {
        self.aggregations.push(agg);
        self
    }

    /// Evaluates the plan against `table`.
    ///
    /// Output groups are sorted by key so results are deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::UnknownColumn`] for missing key/input
    /// columns and [`RelationError::TypeMismatch`] when `SUM` meets a
    /// non-Int value.
    pub fn eval(&self, table: &Table) -> Result<Table, RelationError> {
        let schema = table.schema();
        let key_idx: Vec<usize> = self
            .keys
            .iter()
            .map(|k| schema.index_of(k))
            .collect::<Result<_, _>>()?;
        let agg_idx: Vec<Option<usize>> = self
            .aggregations
            .iter()
            .map(|a| a.input.as_deref().map(|c| schema.index_of(c)).transpose())
            .collect::<Result<_, _>>()?;

        let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
        for r in table.iter() {
            let key: Vec<Value> = key_idx.iter().map(|&i| r.values()[i].clone()).collect();
            let states = groups
                .entry(key)
                .or_insert_with(|| self.aggregations.iter().map(AggState::new).collect());
            for (state, (agg, idx)) in states
                .iter_mut()
                .zip(self.aggregations.iter().zip(agg_idx.iter()))
            {
                let input = idx.map(|i| &r.values()[i]);
                state.update(agg.func, input)?;
            }
        }

        // Output schema: keys (with original types) then aggregates.
        let mut cols: Vec<Column> = Vec::with_capacity(self.keys.len() + self.aggregations.len());
        for (k, &i) in self.keys.iter().zip(&key_idx) {
            cols.push(Column::new(k.clone(), schema.columns()[i].column_type()));
        }
        for (a, idx) in self.aggregations.iter().zip(&agg_idx) {
            let ty = match a.func {
                AggFunc::CountStar | AggFunc::SumInt => ColumnType::Int,
                AggFunc::Min | AggFunc::Max => {
                    let i = idx.expect("min/max require input column");
                    schema.columns()[i].column_type()
                }
            };
            cols.push(Column::new(a.output.clone(), ty));
        }
        let out_schema = Schema::anonymous(cols)?;

        let mut rows: Vec<(Vec<Value>, Vec<AggState>)> = groups.into_iter().collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));

        let mut out = Table::new(out_schema);
        for (key, states) in rows {
            let mut values = key;
            for s in states {
                values.push(s.finish());
            }
            out.insert(Record::new(values))?;
        }
        Ok(out)
    }
}

#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum(i64),
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(agg: &Aggregation) -> Self {
        match agg.func {
            AggFunc::CountStar => AggState::Count(0),
            AggFunc::SumInt => AggState::Sum(0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, func: AggFunc, input: Option<&Value>) -> Result<(), RelationError> {
        match (self, func) {
            (AggState::Count(c), AggFunc::CountStar) => *c += 1,
            (AggState::Sum(s), AggFunc::SumInt) => {
                let v = input.expect("sum requires input");
                if v.is_null() {
                    return Ok(());
                }
                let i = v.as_int().ok_or_else(|| RelationError::TypeMismatch {
                    detail: format!("SUM expects Int, got {v:?}"),
                })?;
                *s += i;
            }
            (AggState::Min(m), AggFunc::Min) => {
                let v = input.expect("min requires input");
                if !v.is_null() && m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            (AggState::Max(m), AggFunc::Max) => {
                let v = input.expect("max requires input");
                if !v.is_null() && m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
            _ => unreachable!("state/function mismatch"),
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::Sum(s) => Value::Int(s),
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema};

    fn table() -> Table {
        let schema = Schema::builder("r")
            .column(Column::new("cuisine", ColumnType::Str))
            .column(Column::new("budget", ColumnType::Int))
            .build()
            .unwrap();
        Table::with_records(
            schema,
            vec![
                Record::new(vec![Value::str("American"), Value::Int(10)]),
                Record::new(vec![Value::str("American"), Value::Int(12)]),
                Record::new(vec![Value::str("American"), Value::Int(12)]),
                Record::new(vec![Value::str("Thai"), Value::Int(10)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn count_star_theta() {
        // The θ_i aggregate query from §V-B.
        let out = GroupBy::new(&["cuisine", "budget"])
            .aggregate(Aggregation::count_star("theta"))
            .eval(&table())
            .unwrap();
        assert_eq!(out.len(), 3);
        let am12: Vec<_> = out
            .iter()
            .filter(|r| r.get(1) == Some(&Value::Int(12)))
            .collect();
        assert_eq!(am12[0].get(2), Some(&Value::Int(2)));
    }

    #[test]
    fn sum_min_max() {
        let out = GroupBy::new(&["cuisine"])
            .aggregate(Aggregation::sum("budget", "total"))
            .aggregate(Aggregation::min("budget", "lo"))
            .aggregate(Aggregation::max("budget", "hi"))
            .eval(&table())
            .unwrap();
        assert_eq!(out.len(), 2);
        let american = &out.records()[0];
        assert_eq!(american.get(0), Some(&Value::str("American")));
        assert_eq!(american.get(1), Some(&Value::Int(34)));
        assert_eq!(american.get(2), Some(&Value::Int(10)));
        assert_eq!(american.get(3), Some(&Value::Int(12)));
    }

    #[test]
    fn output_is_sorted_by_key() {
        let out = GroupBy::new(&["budget"])
            .aggregate(Aggregation::count_star("n"))
            .eval(&table())
            .unwrap();
        let keys: Vec<i64> = out
            .iter()
            .map(|r| r.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(keys, vec![10, 12]);
    }

    #[test]
    fn sum_type_mismatch_errors() {
        let result = GroupBy::new(&["budget"])
            .aggregate(Aggregation::sum("cuisine", "bad"))
            .eval(&table());
        assert!(matches!(result, Err(RelationError::TypeMismatch { .. })));
    }

    #[test]
    fn unknown_key_errors() {
        assert!(GroupBy::new(&["nope"]).eval(&table()).is_err());
    }

    #[test]
    fn sum_skips_nulls() {
        let schema = Schema::builder("r")
            .column(Column::new("g", ColumnType::Int))
            .column(Column::new("v", ColumnType::Int))
            .build()
            .unwrap();
        let t = Table::with_records(
            schema,
            vec![
                Record::new(vec![Value::Int(1), Value::Int(5)]),
                Record::new(vec![Value::Int(1), Value::Null]),
            ],
        )
        .unwrap();
        let out = GroupBy::new(&["g"])
            .aggregate(Aggregation::sum("v", "s"))
            .aggregate(Aggregation::min("v", "m"))
            .eval(&t)
            .unwrap();
        assert_eq!(out.records()[0].get(1), Some(&Value::Int(5)));
        assert_eq!(out.records()[0].get(2), Some(&Value::Int(5)));
    }
}
