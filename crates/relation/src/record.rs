//! Records (tuples) — ordered sequences of [`Value`]s.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::schema::Schema;
use crate::value::Value;

/// A tuple of values conforming (by position) to some [`Schema`].
///
/// Records are plain data: they do not carry their schema, which keeps the
/// MapReduce shuffle representation compact; operators pair them with the
/// schema they were produced under.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Creates a record from its values.
    pub fn new(values: Vec<Value>) -> Self {
        Record { values }
    }

    /// The values in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Field by position, if in range.
    pub fn get(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    /// Field by name under `schema`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RelationError::UnknownColumn`] when `column` is not
    /// in the schema.
    pub fn field<'a>(
        &'a self,
        schema: &Schema,
        column: &str,
    ) -> Result<&'a Value, crate::RelationError> {
        let idx = schema.index_of(column)?;
        Ok(&self.values[idx])
    }

    /// Consumes the record and returns its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Builds a new record keeping only the fields at `indices`, in order.
    pub fn take(&self, indices: &[usize]) -> Record {
        Record {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Concatenates two records (used by join).
    pub fn concat(&self, other: &Record) -> Record {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Record { values }
    }

    /// Concatenates this record with `n` NULLs (used by outer join padding).
    pub fn concat_nulls(&self, n: usize) -> Record {
        let mut values = Vec::with_capacity(self.arity() + n);
        values.extend_from_slice(&self.values);
        values.extend(std::iter::repeat_with(|| Value::Null).take(n));
        Record { values }
    }

    /// Approximate serialized size in bytes; the MapReduce cost model meters
    /// shuffle volume with this.
    pub fn byte_size(&self) -> usize {
        self.values
            .iter()
            .map(|v| match v {
                Value::Null => 1,
                Value::Int(_) => 8,
                Value::Decimal(_) => 8,
                Value::Str(s) => s.len() + 4,
                Value::Date(_) => 4,
            })
            .sum()
    }

    /// Renders the record the way a db-page row would print it: fields
    /// separated by a single space, NULLs empty.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.values {
            let piece = v.render();
            if piece.is_empty() {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&piece);
        }
        out
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Record {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Record::new(iter.into_iter().collect())
    }
}

impl Extend<Value> for Record {
    fn extend<T: IntoIterator<Item = Value>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn sample() -> Record {
        Record::new(vec![Value::Int(1), Value::str("Burger Queen"), Value::Null])
    }

    #[test]
    fn field_lookup_by_name() {
        let schema = Schema::builder("r")
            .column(Column::new("rid", ColumnType::Int))
            .column(Column::new("name", ColumnType::Str))
            .column(Column::new("note", ColumnType::Str))
            .build()
            .unwrap();
        let r = sample();
        assert_eq!(
            r.field(&schema, "name").unwrap(),
            &Value::str("Burger Queen")
        );
        assert!(r.field(&schema, "missing").is_err());
    }

    #[test]
    fn take_and_concat() {
        let r = sample();
        let projected = r.take(&[1, 0]);
        assert_eq!(
            projected.values(),
            &[Value::str("Burger Queen"), Value::Int(1)]
        );
        let joined = r.concat(&projected);
        assert_eq!(joined.arity(), 5);
        let padded = r.concat_nulls(2);
        assert_eq!(padded.arity(), 5);
        assert!(padded.get(4).unwrap().is_null());
    }

    #[test]
    fn render_skips_nulls() {
        let r = sample();
        assert_eq!(r.render(), "1 Burger Queen");
    }

    #[test]
    fn byte_size_counts_strings() {
        let r = Record::new(vec![Value::str("abcd"), Value::Int(1)]);
        assert_eq!(r.byte_size(), 4 + 4 + 8);
    }

    #[test]
    fn collects_from_iterator() {
        let r: Record = vec![Value::Int(1), Value::Int(2)].into_iter().collect();
        assert_eq!(r.arity(), 2);
        let mut r2 = r.clone();
        r2.extend(vec![Value::Int(3)]);
        assert_eq!(r2.arity(), 3);
    }

    #[test]
    fn display_format() {
        assert_eq!(sample().to_string(), "(1, Burger Queen, NULL)");
    }
}
