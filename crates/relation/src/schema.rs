//! Relation schemas: named, typed columns plus an optional primary key.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use crate::error::RelationError;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// Fixed-point decimal with two fractional digits.
    Decimal,
    /// UTF-8 text.
    Str,
    /// Calendar date.
    Date,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ColumnType::Int => "INT",
            ColumnType::Decimal => "DECIMAL",
            ColumnType::Str => "TEXT",
            ColumnType::Date => "DATE",
        };
        f.write_str(name)
    }
}

/// A single column declaration: a name and a type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Column {
    name: String,
    column_type: ColumnType,
}

impl Column {
    /// Creates a column declaration.
    ///
    /// ```
    /// use dash_relation::{Column, ColumnType};
    /// let c = Column::new("budget", ColumnType::Decimal);
    /// assert_eq!(c.name(), "budget");
    /// ```
    pub fn new(name: impl Into<String>, column_type: ColumnType) -> Self {
        Column {
            name: name.into(),
            column_type,
        }
    }

    /// The column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared type.
    pub fn column_type(&self) -> ColumnType {
        self.column_type
    }
}

/// An immutable, cheaply clonable relation schema.
///
/// Schemas are shared between a [`Table`](crate::Table), the operators that
/// derive new relations from it, and the MapReduce jobs that serialize its
/// records — hence the internal [`Arc`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
struct SchemaInner {
    relation: String,
    columns: Vec<Column>,
    primary_key: Vec<usize>,
}

impl Schema {
    /// Starts building a schema for the relation `name`.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            relation: name.into(),
            columns: Vec::new(),
            primary_key: Vec::new(),
        }
    }

    /// Creates an anonymous schema (used for derived/intermediate relations).
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DuplicateColumn`] when two columns share a
    /// name.
    pub fn anonymous(columns: Vec<Column>) -> Result<Self, RelationError> {
        let mut b = Schema::builder("derived");
        for c in columns {
            b = b.column(c);
        }
        b.build()
    }

    /// The relation name.
    pub fn relation(&self) -> &str {
        &self.inner.relation
    }

    /// The ordered column declarations.
    pub fn columns(&self) -> &[Column] {
        &self.inner.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.inner.columns.len()
    }

    /// Indices of primary-key columns (empty when no key was declared).
    pub fn primary_key(&self) -> &[usize] {
        &self.inner.primary_key
    }

    /// Finds the index of a column by name.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::UnknownColumn`] when absent.
    pub fn index_of(&self, column: &str) -> Result<usize, RelationError> {
        self.inner
            .columns
            .iter()
            .position(|c| c.name() == column)
            .ok_or_else(|| RelationError::UnknownColumn {
                column: column.to_string(),
                relation: self.inner.relation.clone(),
            })
    }

    /// Returns `true` when `column` exists.
    pub fn contains(&self, column: &str) -> bool {
        self.inner.columns.iter().any(|c| c.name() == column)
    }

    /// A derived schema that keeps only `columns`, in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::UnknownColumn`] if any name is absent.
    pub fn project(&self, columns: &[&str]) -> Result<Schema, RelationError> {
        let mut cols = Vec::with_capacity(columns.len());
        for &name in columns {
            let idx = self.index_of(name)?;
            cols.push(self.inner.columns[idx].clone());
        }
        let mut b = Schema::builder(format!("{}_proj", self.inner.relation));
        for c in cols {
            b = b.column(c);
        }
        b.build()
    }

    /// Concatenates two schemas for a join result. Columns that collide by
    /// name get the right-hand relation's name as a `rel.col` prefix.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut cols: Vec<Column> = self.inner.columns.clone();
        for c in right.columns() {
            if self.contains(c.name()) {
                cols.push(Column::new(
                    format!("{}.{}", right.relation(), c.name()),
                    c.column_type(),
                ));
            } else {
                cols.push(c.clone());
            }
        }
        Schema {
            inner: Arc::new(SchemaInner {
                relation: format!("{}_{}", self.relation(), right.relation()),
                columns: cols,
                primary_key: Vec::new(),
            }),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.inner.relation)?;
        for (i, c) in self.inner.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", c.name(), c.column_type())?;
        }
        write!(f, ")")
    }
}

/// Incremental [`Schema`] construction (see C-BUILDER).
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    relation: String,
    columns: Vec<Column>,
    primary_key: Vec<String>,
}

impl SchemaBuilder {
    /// Appends a column.
    pub fn column(mut self, column: Column) -> Self {
        self.columns.push(column);
        self
    }

    /// Declares the primary key by column names.
    pub fn primary_key(mut self, columns: &[&str]) -> Self {
        self.primary_key = columns.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Finalizes the schema.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DuplicateColumn`] on duplicate names and
    /// [`RelationError::UnknownColumn`] when a key column is missing.
    pub fn build(self) -> Result<Schema, RelationError> {
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i].iter().any(|o| o.name() == c.name()) {
                return Err(RelationError::DuplicateColumn {
                    column: c.name().to_string(),
                    relation: self.relation.clone(),
                });
            }
        }
        let mut pk = Vec::with_capacity(self.primary_key.len());
        for name in &self.primary_key {
            let idx = self
                .columns
                .iter()
                .position(|c| c.name() == name)
                .ok_or_else(|| RelationError::UnknownColumn {
                    column: name.clone(),
                    relation: self.relation.clone(),
                })?;
            pk.push(idx);
        }
        Ok(Schema {
            inner: Arc::new(SchemaInner {
                relation: self.relation,
                columns: self.columns,
                primary_key: pk,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn restaurant() -> Schema {
        Schema::builder("restaurant")
            .column(Column::new("rid", ColumnType::Int))
            .column(Column::new("name", ColumnType::Str))
            .column(Column::new("cuisine", ColumnType::Str))
            .column(Column::new("budget", ColumnType::Int))
            .primary_key(&["rid"])
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_looks_up() {
        let s = restaurant();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.index_of("cuisine").unwrap(), 2);
        assert_eq!(s.primary_key(), &[0]);
        assert!(s.contains("budget"));
        assert!(!s.contains("rate"));
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = Schema::builder("r")
            .column(Column::new("a", ColumnType::Int))
            .column(Column::new("a", ColumnType::Str))
            .build()
            .unwrap_err();
        assert!(matches!(err, RelationError::DuplicateColumn { .. }));
    }

    #[test]
    fn missing_key_column_rejected() {
        let err = Schema::builder("r")
            .column(Column::new("a", ColumnType::Int))
            .primary_key(&["b"])
            .build()
            .unwrap_err();
        assert!(matches!(err, RelationError::UnknownColumn { .. }));
    }

    #[test]
    fn project_preserves_order_and_types() {
        let s = restaurant();
        let p = s.project(&["budget", "name"]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.columns()[0].name(), "budget");
        assert_eq!(p.columns()[1].column_type(), ColumnType::Str);
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn join_disambiguates_collisions() {
        let left = restaurant();
        let right = Schema::builder("comment")
            .column(Column::new("cid", ColumnType::Int))
            .column(Column::new("rid", ColumnType::Int))
            .column(Column::new("comment", ColumnType::Str))
            .build()
            .unwrap();
        let joined = left.join(&right);
        assert_eq!(joined.arity(), 7);
        assert!(joined.contains("comment.rid"));
        assert!(joined.contains("rid"));
    }

    #[test]
    fn display_formats() {
        let s = restaurant();
        let text = s.to_string();
        assert!(text.starts_with("restaurant("));
        assert!(text.contains("budget: INT"));
    }

    #[test]
    fn schema_clone_is_cheap_and_equal() {
        let s = restaurant();
        let c = s.clone();
        assert_eq!(s, c);
    }
}
