//! Typed scalar values.
//!
//! Dash groups records into db-page fragments keyed by *selection attribute
//! values* (the fragment identifier of Definition 2), so every value must be
//! usable as a hash/sort key. That rules out raw floats; money-like
//! quantities use the exact fixed-point [`Decimal`] type instead, matching
//! TPC-H semantics.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

use crate::error::RelationError;

/// A fixed-point decimal with two fractional digits, stored as scaled
/// hundredths (`i64`).
///
/// This is the representation used for TPC-H money columns (`acctbal`,
/// `extendedprice`, ...) and the running example's `budget`. Being an
/// integer under the hood it is `Eq + Ord + Hash` and therefore usable in
/// fragment identifiers.
///
/// ```
/// use dash_relation::Decimal;
/// let d = Decimal::from_cents(1250);
/// assert_eq!(d.to_string(), "12.50");
/// assert_eq!(Decimal::from_str_exact("12.5").unwrap(), d);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Decimal(i64);

impl Decimal {
    /// Creates a decimal from a count of hundredths.
    pub fn from_cents(cents: i64) -> Self {
        Decimal(cents)
    }

    /// Creates a decimal from a whole-unit integer.
    pub fn from_int(units: i64) -> Self {
        Decimal(units * 100)
    }

    /// Returns the scaled hundredths representation.
    pub fn cents(self) -> i64 {
        self.0
    }

    /// Returns the value truncated toward zero to whole units.
    pub fn trunc(self) -> i64 {
        self.0 / 100
    }

    /// Parses a decimal from text with at most two fractional digits.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::ParseValue`] when the text is not a decimal
    /// number or carries more than two fractional digits.
    pub fn from_str_exact(text: &str) -> Result<Self, RelationError> {
        let err = || RelationError::ParseValue {
            text: text.to_string(),
            expected: "Decimal".to_string(),
        };
        let (neg, body) = match text.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, text),
        };
        if body.is_empty() {
            return Err(err());
        }
        let (int_part, frac_part) = match body.split_once('.') {
            Some((i, f)) => (i, f),
            None => (body, ""),
        };
        if frac_part.len() > 2 {
            return Err(err());
        }
        let int: i64 = if int_part.is_empty() {
            0
        } else {
            int_part.parse().map_err(|_| err())?
        };
        let frac: i64 = if frac_part.is_empty() {
            0
        } else {
            let padded = format!("{frac_part:0<2}");
            padded.parse().map_err(|_| err())?
        };
        let cents = int * 100 + frac;
        Ok(Decimal(if neg { -cents } else { cents }))
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}{}.{:02}", abs / 100, abs % 100)
    }
}

impl From<i64> for Decimal {
    fn from(units: i64) -> Self {
        Decimal::from_int(units)
    }
}

/// A calendar date stored as `(year, month, day)` packed into an ordinal
/// day count for ordering.
///
/// The generator only needs dates to be orderable, hashable and printable
/// (`MM/YY` in db-pages, `YYYY-MM-DD` in SQL); no full calendar arithmetic
/// is required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: u16,
    month: u8,
    day: u8,
}

impl Date {
    /// Creates a date. Months and days are clamped into valid ranges rather
    /// than validated against a full calendar, which suffices for synthetic
    /// data.
    pub fn new(year: u16, month: u8, day: u8) -> Self {
        Date {
            year,
            month: month.clamp(1, 12),
            day: day.clamp(1, 31),
        }
    }

    /// The year component.
    pub fn year(self) -> u16 {
        self.year
    }

    /// The month component (1–12).
    pub fn month(self) -> u8 {
        self.month
    }

    /// The day component (1–31).
    pub fn day(self) -> u8 {
        self.day
    }

    /// Parses `YYYY-MM-DD`.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::ParseValue`] on malformed input.
    pub fn parse_iso(text: &str) -> Result<Self, RelationError> {
        let err = || RelationError::ParseValue {
            text: text.to_string(),
            expected: "Date".to_string(),
        };
        let mut parts = text.split('-');
        let year: u16 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let month: u8 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let day: u8 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if parts.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(err());
        }
        Ok(Date { year, month, day })
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A dynamically typed scalar value stored in a [`Record`](crate::Record).
///
/// `Value` is totally ordered: `Null` sorts before everything, and values of
/// different types order by a fixed type rank. This makes heterogeneous sort
/// keys well-defined (needed by MapReduce shuffle sorting) while same-typed
/// comparisons behave naturally.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL — produced by outer joins for unmatched sides.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Exact fixed-point decimal (two fractional digits).
    Decimal(Decimal),
    /// UTF-8 string.
    Str(String),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// Shorthand for building a [`Value::Str`].
    ///
    /// ```
    /// use dash_relation::Value;
    /// assert_eq!(Value::str("American"), Value::Str("American".to_string()));
    /// ```
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Shorthand for building a [`Value::Decimal`] from hundredths.
    pub fn decimal(cents: i64) -> Self {
        Value::Decimal(Decimal::from_cents(cents))
    }

    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The [`ColumnType`](crate::ColumnType) tag of this value, or `None`
    /// for `Null` (which inhabits every type).
    pub fn column_type(&self) -> Option<crate::schema::ColumnType> {
        use crate::schema::ColumnType;
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Decimal(_) => Some(ColumnType::Decimal),
            Value::Str(_) => Some(ColumnType::Str),
            Value::Date(_) => Some(ColumnType::Date),
        }
    }

    /// Extracts an `i64` if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts a `&str` if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts a [`Decimal`] if this is a [`Value::Decimal`].
    pub fn as_decimal(&self) -> Option<Decimal> {
        match self {
            Value::Decimal(d) => Some(*d),
            _ => None,
        }
    }

    /// A numeric view: `Int` and `Decimal` both map onto scaled hundredths
    /// so cross-type numeric comparisons (e.g. `budget BETWEEN 10 AND 15`
    /// against a decimal column) behave as SQL users expect.
    pub fn numeric_cents(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i * 100),
            Value::Decimal(d) => Some(d.cents()),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Decimal(_) => 1, // numerics compare together
            Value::Str(_) => 2,
            Value::Date(_) => 3,
        }
    }

    /// Renders the value the way a db-page would print it (no quoting; NULL
    /// renders as empty text so it contributes no keywords).
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            other => other.to_string(),
        }
    }

    /// Renders the value as a query-string form value. The text is
    /// *unencoded* — URL escaping (space → `+`) is the responsibility of
    /// the query-string renderer, so values stored in a
    /// [`QueryString`](https://docs.rs/dash-webapp) never double-encode.
    pub fn to_query_value(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Decimal(d) => d.to_string(),
            Value::Str(s) => s.clone(),
            Value::Date(d) => d.to_string(),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Decimal(a), Decimal(b)) => a.cmp(b),
            (Int(_), Decimal(_)) | (Decimal(_), Int(_)) => self
                .numeric_cents()
                .expect("numeric")
                .cmp(&other.numeric_cents().expect("numeric")),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Decimal(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Decimal> for Value {
    fn from(v: Decimal) -> Self {
        Value::Decimal(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_roundtrip_display_parse() {
        for cents in [0, 1, 99, 100, 101, 1250, -1250, 123456] {
            let d = Decimal::from_cents(cents);
            let back = Decimal::from_str_exact(&d.to_string()).unwrap();
            assert_eq!(back, d, "roundtrip {cents}");
        }
    }

    #[test]
    fn decimal_parse_variants() {
        assert_eq!(Decimal::from_str_exact("12").unwrap().cents(), 1200);
        assert_eq!(Decimal::from_str_exact("12.5").unwrap().cents(), 1250);
        assert_eq!(Decimal::from_str_exact("12.05").unwrap().cents(), 1205);
        assert_eq!(Decimal::from_str_exact("-3.07").unwrap().cents(), -307);
        assert_eq!(Decimal::from_str_exact(".5").unwrap().cents(), 50);
        assert!(Decimal::from_str_exact("12.345").is_err());
        assert!(Decimal::from_str_exact("abc").is_err());
        assert!(Decimal::from_str_exact("").is_err());
        assert!(Decimal::from_str_exact("-").is_err());
    }

    #[test]
    fn date_parse_and_display() {
        let d = Date::parse_iso("2011-08-15").unwrap();
        assert_eq!(d.to_string(), "2011-08-15");
        assert_eq!((d.year(), d.month(), d.day()), (2011, 8, 15));
        assert!(Date::parse_iso("2011-13-01").is_err());
        assert!(Date::parse_iso("2011-08").is_err());
        assert!(Date::parse_iso("2011-08-15-1").is_err());
    }

    #[test]
    fn date_ordering() {
        let a = Date::new(2010, 6, 10);
        let b = Date::new(2010, 6, 11);
        let c = Date::new(2011, 1, 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn value_ordering_null_first() {
        let mut values = [
            Value::str("zzz"),
            Value::Int(3),
            Value::Null,
            Value::decimal(150),
        ];
        values.sort();
        assert_eq!(values[0], Value::Null);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        // 12 (int) vs 12.00 (decimal) — equal numerically, ordered equal.
        assert_eq!(Value::Int(12).cmp(&Value::decimal(1200)), Ordering::Equal);
        assert!(Value::Int(12) < Value::decimal(1250));
        assert!(Value::decimal(1250) < Value::Int(13));
    }

    #[test]
    fn render_null_is_empty() {
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Int(5).render(), "5");
    }

    #[test]
    fn query_value_is_unencoded() {
        // Encoding happens at the query-string layer, exactly once.
        assert_eq!(Value::str("New York").to_query_value(), "New York");
    }

    #[test]
    fn value_common_traits() {
        fn assert_traits<T: Clone + std::fmt::Debug + PartialEq + Eq + std::hash::Hash>() {}
        assert_traits::<Value>();
        assert_traits::<Decimal>();
        assert_traits::<Date>();
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(Decimal::from_int(2)), Value::decimal(200));
    }
}
