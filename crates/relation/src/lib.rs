//! # dash-relation
//!
//! The relational substrate underneath the [Dash] search engine
//! (ICDCS 2012). Dash crawls *databases* rather than the web, so it needs a
//! complete, embeddable relational engine: typed values, schemas, tables
//! with primary/foreign keys, and the project–select–join (PSJ) operator
//! family that the paper's parameterized application queries are built from
//! (Definition 1 of the paper).
//!
//! The crate is deliberately self-contained (no external database): Dash's
//! database crawler ([`dash-core`]) consumes these tables directly, and the
//! MapReduce substrate serializes [`Record`]s for byte-metered shuffles.
//!
//! ## Quick example
//!
//! ```
//! use dash_relation::{Column, ColumnType, Database, Schema, Table, Value, Record};
//!
//! # fn main() -> Result<(), dash_relation::RelationError> {
//! let schema = Schema::builder("restaurant")
//!     .column(Column::new("rid", ColumnType::Int))
//!     .column(Column::new("name", ColumnType::Str))
//!     .column(Column::new("budget", ColumnType::Int))
//!     .primary_key(&["rid"])
//!     .build()?;
//! let mut table = Table::new(schema);
//! table.insert(Record::new(vec![
//!     Value::Int(1),
//!     Value::str("Burger Queen"),
//!     Value::Int(10),
//! ]))?;
//! assert_eq!(table.len(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! [Dash]: https://doi.org/10.1109/ICDCS.2012.53
//! [`dash-core`]: ../dash_core/index.html

pub mod catalog;
pub mod csv;
pub mod error;
pub mod expr;
pub mod ops;
pub mod record;
pub mod schema;
pub mod table;
pub mod value;

pub use catalog::{Database, ForeignKey};
pub use csv::{from_csv, to_csv};
pub use error::RelationError;
pub use expr::{CompareOp, Predicate};
pub use ops::aggregate::{AggFunc, Aggregation, GroupBy};
pub use ops::join::{join, JoinKind, JoinSpec};
pub use ops::project::project;
pub use ops::select::select;
pub use ops::sort::{sort_by, SortKey, SortOrder};
pub use record::Record;
pub use schema::{Column, ColumnType, Schema, SchemaBuilder};
pub use table::Table;
pub use value::{Date, Decimal, Value};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, RelationError>;
