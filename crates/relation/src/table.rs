//! In-memory tables with schema validation and key enforcement.

use std::collections::HashSet;

use crate::error::RelationError;
use crate::record::Record;
use crate::schema::Schema;
use crate::value::Value;

/// An in-memory relation instance: a [`Schema`] plus its records.
///
/// Inserts validate arity, column types (NULL is allowed in any column —
/// outer joins require it) and primary-key uniqueness.
///
/// ```
/// use dash_relation::{Column, ColumnType, Record, Schema, Table, Value};
/// # fn main() -> Result<(), dash_relation::RelationError> {
/// let schema = Schema::builder("customer")
///     .column(Column::new("uid", ColumnType::Int))
///     .column(Column::new("uname", ColumnType::Str))
///     .primary_key(&["uid"])
///     .build()?;
/// let mut t = Table::new(schema);
/// t.insert(Record::new(vec![Value::Int(109), Value::str("David")]))?;
/// assert!(t.insert(Record::new(vec![Value::Int(109), Value::str("Dup")])).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    records: Vec<Record>,
    key_set: HashSet<Vec<Value>>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            records: Vec::new(),
            key_set: HashSet::new(),
        }
    }

    /// Creates a table and bulk-inserts `records`.
    ///
    /// # Errors
    ///
    /// Propagates the first insert error.
    pub fn with_records(
        schema: Schema,
        records: impl IntoIterator<Item = Record>,
    ) -> Result<Self, RelationError> {
        let mut t = Table::new(schema);
        for r in records {
            t.insert(r)?;
        }
        Ok(t)
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in insertion order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records.iter()
    }

    /// Validates and inserts a record.
    ///
    /// # Errors
    ///
    /// * [`RelationError::SchemaMismatch`] — wrong arity or a non-NULL value
    ///   of the wrong type.
    /// * [`RelationError::DuplicateKey`] — primary-key collision.
    pub fn insert(&mut self, record: Record) -> Result<(), RelationError> {
        self.validate(&record)?;
        if !self.schema.primary_key().is_empty() {
            let key: Vec<Value> = self
                .schema
                .primary_key()
                .iter()
                .map(|&i| record.values()[i].clone())
                .collect();
            if !self.key_set.insert(key.clone()) {
                return Err(RelationError::DuplicateKey {
                    relation: self.schema.relation().to_string(),
                    key: format!("{key:?}"),
                });
            }
        }
        self.records.push(record);
        Ok(())
    }

    /// Removes all records matching `pred`, returning how many were removed.
    /// Primary-key bookkeeping is kept consistent.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Record) -> bool) -> usize {
        let pk = self.schema.primary_key().to_vec();
        let key_set = &mut self.key_set;
        let before = self.records.len();
        self.records.retain(|r| {
            if pred(r) {
                if !pk.is_empty() {
                    let key: Vec<Value> = pk.iter().map(|&i| r.values()[i].clone()).collect();
                    key_set.remove(&key);
                }
                false
            } else {
                true
            }
        });
        before - self.records.len()
    }

    /// Total approximate byte size of all records (used to report dataset
    /// sizes, Table II of the paper).
    pub fn byte_size(&self) -> usize {
        self.records.iter().map(Record::byte_size).sum()
    }

    fn validate(&self, record: &Record) -> Result<(), RelationError> {
        if record.arity() != self.schema.arity() {
            return Err(RelationError::SchemaMismatch {
                relation: self.schema.relation().to_string(),
                detail: format!(
                    "expected arity {}, got {}",
                    self.schema.arity(),
                    record.arity()
                ),
            });
        }
        for (col, val) in self.schema.columns().iter().zip(record.values()) {
            if let Some(vt) = val.column_type() {
                if vt != col.column_type() {
                    return Err(RelationError::SchemaMismatch {
                        relation: self.schema.relation().to_string(),
                        detail: format!(
                            "column `{}` expects {}, got {vt:?}",
                            col.name(),
                            col.column_type()
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Table {
    type Item = &'a Record;
    type IntoIter = std::slice::Iter<'a, Record>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::builder("restaurant")
            .column(Column::new("rid", ColumnType::Int))
            .column(Column::new("name", ColumnType::Str))
            .primary_key(&["rid"])
            .build()
            .unwrap()
    }

    #[test]
    fn insert_validates_arity() {
        let mut t = Table::new(schema());
        let err = t.insert(Record::new(vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, RelationError::SchemaMismatch { .. }));
    }

    #[test]
    fn insert_validates_types() {
        let mut t = Table::new(schema());
        let err = t
            .insert(Record::new(vec![Value::str("x"), Value::str("y")]))
            .unwrap_err();
        assert!(matches!(err, RelationError::SchemaMismatch { .. }));
    }

    #[test]
    fn null_allowed_in_any_column() {
        let mut t = Table::new(schema());
        t.insert(Record::new(vec![Value::Int(1), Value::Null]))
            .unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn primary_key_enforced() {
        let mut t = Table::new(schema());
        t.insert(Record::new(vec![Value::Int(1), Value::str("a")]))
            .unwrap();
        let err = t
            .insert(Record::new(vec![Value::Int(1), Value::str("b")]))
            .unwrap_err();
        assert!(matches!(err, RelationError::DuplicateKey { .. }));
    }

    #[test]
    fn delete_frees_key() {
        let mut t = Table::new(schema());
        t.insert(Record::new(vec![Value::Int(1), Value::str("a")]))
            .unwrap();
        let removed = t.delete_where(|r| r.get(0) == Some(&Value::Int(1)));
        assert_eq!(removed, 1);
        assert!(t.is_empty());
        // Key is reusable after delete.
        t.insert(Record::new(vec![Value::Int(1), Value::str("c")]))
            .unwrap();
    }

    #[test]
    fn iteration_and_byte_size() {
        let mut t = Table::new(schema());
        t.insert(Record::new(vec![Value::Int(1), Value::str("abcd")]))
            .unwrap();
        t.insert(Record::new(vec![Value::Int(2), Value::str("ef")]))
            .unwrap();
        assert_eq!(t.iter().count(), 2);
        assert_eq!((&t).into_iter().count(), 2);
        assert_eq!(t.byte_size(), (8 + 8) + (8 + 6));
    }

    #[test]
    fn with_records_bulk() {
        let t = Table::with_records(
            schema(),
            vec![
                Record::new(vec![Value::Int(1), Value::str("a")]),
                Record::new(vec![Value::Int(2), Value::str("b")]),
            ],
        )
        .unwrap();
        assert_eq!(t.len(), 2);
    }
}
