//! CSV interchange for tables.
//!
//! The paper's stepwise algorithm begins by exporting "all records from
//! individual operand relations … from a database to a MR cluster" as
//! files (§V-A). This module provides that export/import path: typed,
//! header-carrying CSV with standard quoting, round-tripping every value
//! type including NULLs.

use crate::error::RelationError;
use crate::record::Record;
use crate::schema::{ColumnType, Schema};
use crate::table::Table;
use crate::value::{Date, Decimal, Value};

/// Serializes a table to CSV: one header row of `name:TYPE` columns, then
/// one row per record. NULL renders as an empty unquoted field; strings
/// are quoted when they contain commas, quotes or newlines.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| format!("{}:{}", c.name(), c.column_type()))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for record in table.iter() {
        let row: Vec<String> = record.values().iter().map(field_text).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

fn field_text(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Str(s) => quote(s),
        other => other.to_string(),
    }
}

fn quote(s: &str) -> String {
    if s.is_empty() || s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parses a CSV produced by [`to_csv`] back into a table named
/// `relation`.
///
/// # Errors
///
/// Returns [`RelationError::ParseValue`] on malformed fields,
/// [`RelationError::SchemaMismatch`] on ragged rows, and schema errors on
/// a bad header.
pub fn from_csv(relation: &str, text: &str) -> Result<Table, RelationError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| RelationError::ParseValue {
        text: String::new(),
        expected: "CSV header".to_string(),
    })?;
    let mut builder = Schema::builder(relation);
    let mut types = Vec::new();
    for piece in split_row(header) {
        let (name, ty_text) = piece
            .split_once(':')
            .ok_or_else(|| RelationError::ParseValue {
                text: piece.clone(),
                expected: "name:TYPE header field".to_string(),
            })?;
        let ty = match ty_text {
            "INT" => ColumnType::Int,
            "DECIMAL" => ColumnType::Decimal,
            "TEXT" => ColumnType::Str,
            "DATE" => ColumnType::Date,
            other => {
                return Err(RelationError::ParseValue {
                    text: other.to_string(),
                    expected: "column type".to_string(),
                })
            }
        };
        types.push(ty);
        builder = builder.column(crate::schema::Column::new(name, ty));
    }
    let schema = builder.build()?;
    let mut table = Table::new(schema);
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let fields = split_row(line);
        if fields.len() != types.len() {
            return Err(RelationError::SchemaMismatch {
                relation: relation.to_string(),
                detail: format!("row has {} fields, expected {}", fields.len(), types.len()),
            });
        }
        let mut values = Vec::with_capacity(fields.len());
        for (field, &ty) in fields.iter().zip(&types) {
            values.push(parse_field(field, ty)?);
        }
        table.insert(Record::new(values))?;
    }
    Ok(table)
}

fn parse_field(field: &str, ty: ColumnType) -> Result<Value, RelationError> {
    // Empty unquoted field = NULL. (Quoted empty strings arrive here as a
    // sentinel from `split_row`.)
    if field.is_empty() {
        return Ok(Value::Null);
    }
    if field == "\u{0}" {
        return Ok(Value::str(""));
    }
    let err = |expected: &str| RelationError::ParseValue {
        text: field.to_string(),
        expected: expected.to_string(),
    };
    Ok(match ty {
        ColumnType::Int => Value::Int(field.parse().map_err(|_| err("Int"))?),
        ColumnType::Decimal => Value::Decimal(Decimal::from_str_exact(field)?),
        ColumnType::Str => Value::str(field),
        ColumnType::Date => Value::Date(Date::parse_iso(field)?),
    })
}

/// Splits one CSV row, honoring double-quote escaping. A quoted empty
/// string is returned as a `"\u{0}"` sentinel so it can be told apart
/// from NULL.
fn split_row(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    loop {
        let mut field = String::new();
        let mut was_quoted = false;
        if i < chars.len() && chars[i] == '"' {
            was_quoted = true;
            i += 1;
            while i < chars.len() {
                if chars[i] == '"' {
                    if i + 1 < chars.len() && chars[i + 1] == '"' {
                        field.push('"');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    field.push(chars[i]);
                    i += 1;
                }
            }
        } else {
            while i < chars.len() && chars[i] != ',' {
                field.push(chars[i]);
                i += 1;
            }
        }
        if was_quoted && field.is_empty() {
            field.push('\u{0}');
        }
        fields.push(field);
        if i >= chars.len() {
            break;
        }
        debug_assert_eq!(chars[i], ',');
        i += 1; // skip comma
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn table() -> Table {
        let schema = Schema::builder("t")
            .column(Column::new("id", ColumnType::Int))
            .column(Column::new("name", ColumnType::Str))
            .column(Column::new("price", ColumnType::Decimal))
            .column(Column::new("day", ColumnType::Date))
            .build()
            .unwrap();
        Table::with_records(
            schema,
            vec![
                Record::new(vec![
                    Value::Int(1),
                    Value::str("plain"),
                    Value::decimal(1250),
                    Value::Date(Date::new(2011, 8, 15)),
                ]),
                Record::new(vec![
                    Value::Int(2),
                    Value::str("has, comma and \"quotes\""),
                    Value::Null,
                    Value::Null,
                ]),
                Record::new(vec![
                    Value::Int(3),
                    Value::str(""),
                    Value::decimal(-5),
                    Value::Null,
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = table();
        let text = to_csv(&t);
        let back = from_csv("t", &text).unwrap();
        assert_eq!(back.schema().arity(), 4);
        assert_eq!(back.records(), t.records());
    }

    #[test]
    fn header_carries_types() {
        let text = to_csv(&table());
        assert!(text.starts_with("id:INT,name:TEXT,price:DECIMAL,day:DATE\n"));
    }

    #[test]
    fn null_vs_empty_string() {
        let t = table();
        let back = from_csv("t", &to_csv(&t)).unwrap();
        // Row 3: empty string stays a string; NULL stays NULL.
        assert_eq!(back.records()[2].get(1), Some(&Value::str("")));
        assert!(back.records()[2].get(3).unwrap().is_null());
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_csv("t", "").is_err());
        assert!(from_csv("t", "noheader\n").is_err());
        assert!(from_csv("t", "a:INT\nx\n").is_err());
        assert!(from_csv("t", "a:WEIRD\n1\n").is_err());
        assert!(from_csv("t", "a:INT,b:INT\n1\n").is_err());
    }

    #[test]
    fn quoting_edge_cases() {
        assert_eq!(quote("simple"), "simple");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
        let fields = split_row("\"a,b\",plain,\"with \"\"q\"\"\"");
        assert_eq!(fields, vec!["a,b", "plain", "with \"q\""]);
    }
}
