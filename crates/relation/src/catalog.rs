//! A named collection of tables with foreign-key metadata — the `D` that a
//! web application queries and that Dash's database crawler walks.

use std::collections::BTreeMap;

use crate::error::RelationError;
use crate::table::Table;
use crate::value::Value;

/// A declared foreign key: `child.child_column` references
/// `parent.parent_column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Child relation name.
    pub child: String,
    /// Column in the child relation.
    pub child_column: String,
    /// Parent relation name.
    pub parent: String,
    /// Column in the parent relation (usually its primary key).
    pub parent_column: String,
}

impl ForeignKey {
    /// Creates a foreign-key declaration.
    pub fn new(
        child: impl Into<String>,
        child_column: impl Into<String>,
        parent: impl Into<String>,
        parent_column: impl Into<String>,
    ) -> Self {
        ForeignKey {
            child: child.into(),
            child_column: child_column.into(),
            parent: parent.into(),
            parent_column: parent_column.into(),
        }
    }
}

/// A database: tables by name plus foreign keys.
///
/// ```
/// use dash_relation::{Database, Schema, Column, ColumnType, Table};
/// # fn main() -> Result<(), dash_relation::RelationError> {
/// let mut db = Database::new("fooddb");
/// let schema = Schema::builder("customer")
///     .column(Column::new("uid", ColumnType::Int))
///     .build()?;
/// db.add_table(Table::new(schema));
/// assert!(db.table("customer").is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Database {
    name: String,
    tables: BTreeMap<String, Table>,
    foreign_keys: Vec<ForeignKey>,
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database {
            name: name.into(),
            tables: BTreeMap::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers (or replaces) a table under its schema's relation name.
    pub fn add_table(&mut self, table: Table) {
        self.tables
            .insert(table.schema().relation().to_string(), table);
    }

    /// Declares a foreign key (referential metadata only; use
    /// [`Database::check_foreign_keys`] to validate instances).
    pub fn add_foreign_key(&mut self, fk: ForeignKey) {
        self.foreign_keys.push(fk);
    }

    /// Looks up a table.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::UnknownRelation`] when absent.
    pub fn table(&self, name: &str) -> Result<&Table, RelationError> {
        self.tables
            .get(name)
            .ok_or_else(|| RelationError::UnknownRelation {
                relation: name.to_string(),
            })
    }

    /// Mutable table lookup.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::UnknownRelation`] when absent.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, RelationError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| RelationError::UnknownRelation {
                relation: name.to_string(),
            })
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Validates every declared foreign key against the current contents.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::ForeignKeyViolation`] describing the first
    /// dangling reference, or [`RelationError::UnknownRelation`] /
    /// [`RelationError::UnknownColumn`] on metadata problems.
    pub fn check_foreign_keys(&self) -> Result<(), RelationError> {
        for fk in &self.foreign_keys {
            let child = self.table(&fk.child)?;
            let parent = self.table(&fk.parent)?;
            let child_idx = child.schema().index_of(&fk.child_column)?;
            let parent_idx = parent.schema().index_of(&fk.parent_column)?;
            let parent_values: std::collections::HashSet<&Value> =
                parent.iter().map(|r| &r.values()[parent_idx]).collect();
            for r in child.iter() {
                let v = &r.values()[child_idx];
                if !v.is_null() && !parent_values.contains(v) {
                    return Err(RelationError::ForeignKeyViolation {
                        relation: fk.child.clone(),
                        detail: format!(
                            "{}.{} = {v} has no match in {}.{}",
                            fk.child, fk.child_column, fk.parent, fk.parent_column
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Total approximate byte size across tables (Table II reporting).
    pub fn byte_size(&self) -> usize {
        self.tables.values().map(Table::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{Column, ColumnType, Schema};

    fn db() -> Database {
        let mut db = Database::new("fooddb");
        let restaurant = Schema::builder("restaurant")
            .column(Column::new("rid", ColumnType::Int))
            .primary_key(&["rid"])
            .build()
            .unwrap();
        let comment = Schema::builder("comment")
            .column(Column::new("cid", ColumnType::Int))
            .column(Column::new("rid", ColumnType::Int))
            .primary_key(&["cid"])
            .build()
            .unwrap();
        let mut rt = Table::new(restaurant);
        rt.insert(Record::new(vec![Value::Int(1)])).unwrap();
        let mut ct = Table::new(comment);
        ct.insert(Record::new(vec![Value::Int(201), Value::Int(1)]))
            .unwrap();
        db.add_table(rt);
        db.add_table(ct);
        db.add_foreign_key(ForeignKey::new("comment", "rid", "restaurant", "rid"));
        db
    }

    #[test]
    fn lookup_and_names() {
        let db = db();
        assert_eq!(db.table_names(), vec!["comment", "restaurant"]);
        assert!(db.table("restaurant").is_ok());
        assert!(db.table("nope").is_err());
    }

    #[test]
    fn fk_check_passes_then_fails() {
        let mut db = db();
        db.check_foreign_keys().unwrap();
        db.table_mut("comment")
            .unwrap()
            .insert(Record::new(vec![Value::Int(202), Value::Int(999)]))
            .unwrap();
        let err = db.check_foreign_keys().unwrap_err();
        assert!(matches!(err, RelationError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn null_fk_is_permitted() {
        let mut db = db();
        db.table_mut("comment")
            .unwrap()
            .insert(Record::new(vec![Value::Int(202), Value::Null]))
            .unwrap();
        db.check_foreign_keys().unwrap();
    }

    #[test]
    fn byte_size_sums_tables() {
        let db = db();
        assert_eq!(db.byte_size(), 8 + 16);
    }
}
