//! # dash-serve
//!
//! The query-serving front-end the paper actually promises: keyword
//! searches from concurrent web users answered with db-page URLs,
//! while the index keeps absorbing database changes underneath. This
//! is the first crate *above* both `dash-core` and `dash-webapp` in
//! the dependency graph — the servlet-side serving layer the core
//! engines were built for.
//!
//! [`DashServer`] composes four mechanisms, each in its own module:
//!
//! * **Epoch snapshots** ([`snapshot`]) — the engine lives behind an
//!   `Arc` snapshot handle; readers grab the current snapshot and
//!   search it lock-free, writers apply each [`IndexDelta`] to a
//!   shadow copy ([`ShardedEngine::fork`]) and publish with one atomic
//!   pointer swap. Searches never block on maintenance and can never
//!   observe a half-applied delta.
//! * **Micro-batching** ([`batch`]) — concurrent requests are
//!   collected from a bounded queue into one
//!   [`ShardedEngine::search_many`] call (batch window + size cap),
//!   amortizing the per-call shard fan-out; identical requests in a
//!   batch are computed once.
//! * **Precise result caching** ([`cache`]) — a keyed LRU fronting the
//!   engine, invalidated entry-by-entry using each published delta's
//!   [`DeltaSignature`] (touched equality groups + added/removed
//!   keywords) intersected with each entry's candidate groups and
//!   request keywords — never a wholesale flush.
//! * **Closed-loop load generation** ([`loadgen`]) — a deterministic
//!   mixed search/update traffic harness reporting p50/p99 latency and
//!   qps (the `serve` bench suite and CI's load smoke drive it).
//!
//! The whole stack is **exact**: `tests/serve_equivalence.rs` proves
//! that served hit lists — cached, batched, and across any
//! interleaving of snapshot publications — are byte-identical to a
//! fresh [`DashEngine::search`] over the same fragments, at shard
//! counts 1 and 4.
//!
//! ## Quickstart
//!
//! ```
//! use dash_serve::{DashServer, ServeConfig};
//! use dash_core::{DashConfig, SearchRequest};
//! use dash_webapp::fooddb;
//!
//! # fn main() -> Result<(), dash_core::CoreError> {
//! let db = fooddb::database();
//! let app = fooddb::search_application()?;
//! let server = DashServer::build(&app, &db, &DashConfig::default(), ServeConfig::default())?;
//! let hits = server.search(&SearchRequest::new(&["burger"]).k(2).min_size(20));
//! assert_eq!(hits.len(), 2);
//! // The same request again is answered from the result cache.
//! assert_eq!(server.search(&SearchRequest::new(&["burger"]).k(2).min_size(20)), hits);
//! # Ok(())
//! # }
//! ```
//!
//! [`DashEngine::search`]: dash_core::DashEngine::search
//! [`ShardedEngine::fork`]: dash_core::ShardedEngine::fork
//! [`ShardedEngine::search_many`]: dash_core::ShardedEngine::search_many
//! [`IndexDelta`]: dash_core::IndexDelta
//! [`DeltaSignature`]: dash_core::DeltaSignature

pub mod batch;
pub mod cache;
pub mod loadgen;
pub mod snapshot;

use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dash_core::update::bulk_delta;
use dash_core::{
    env_shards, DashConfig, DeltaSignature, Fragment, IndexDelta, IngestSource, RecordChange,
    RefreshStats, Result, SearchHit, SearchRequest, ShardedEngine,
};
use dash_obs::{render_merged, Counter, Histogram, Registry, SpanGuard};
use dash_relation::{Database, Record};
use dash_webapp::WebApplication;
use parking_lot::Mutex;

pub use cache::CacheStats;
pub use loadgen::{LoadOp, LoadProfile, LoadReport};
pub use snapshot::EngineSnapshot;

use cache::ResultCache;
use snapshot::{try_drain, SnapshotHandle};

/// How many scheduler yields a publication waits for the retired
/// snapshot's readers before falling back to forking the new live
/// engine. In-flight micro-batches hold snapshots for microseconds, so
/// real drains finish in a handful of yields; the bound only matters
/// when a caller retains a [`DashServer::snapshot`] long-term.
const DRAIN_ATTEMPTS: usize = 4096;

/// Tunables of the serving layer.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard count of the underlying engines. The default reads
    /// `DASH_SHARDS` (like the CI matrix) and falls back to 1.
    pub shards: usize,
    /// How long the batcher waits for more requests after the first
    /// one before serving the batch.
    pub batch_window: Duration,
    /// Maximum requests per micro-batch.
    pub max_batch: usize,
    /// Bound of the request queue; senders block (closed-loop
    /// backpressure) when serving falls this far behind.
    pub queue_bound: usize,
    /// Result-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Admission budget on the *total* number of cached [`SearchHit`]s
    /// across all entries (a proxy for cached bytes): an oversize
    /// result set is refused admission outright, and an admissible one
    /// evicts LRU entries until it fits — so one huge result can never
    /// blow the memory bound the entry-count cap alone left open.
    /// 0 disables the budget (entry count is then the only bound).
    pub cache_hit_budget: usize,
    /// Capacity (in publications) of the bounded delta log — the ring
    /// of recent [`PublishEvent`]s a briefly-disconnected replica
    /// tails from its last epoch instead of re-bootstrapping from a
    /// full snapshot ([`DashServer::replication_feed_from`]). 0
    /// disables the log (every reconnect re-snapshots).
    pub delta_log: usize,
    /// Bound (in publications) of each replication tap's channel. A
    /// consumer that falls this far behind is **evicted** — its
    /// channel closes and it must re-sync through
    /// [`DashServer::replication_feed_from`] (delta tail or snapshot)
    /// — instead of growing the primary's memory without limit. 0
    /// makes taps unbounded (the pre-eviction behavior).
    pub feed_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: env_shards().unwrap_or(1),
            batch_window: Duration::from_micros(100),
            max_batch: 16,
            queue_bound: 256,
            cache_capacity: 1024,
            cache_hit_budget: 1 << 16,
            delta_log: 64,
            feed_depth: 1024,
        }
    }
}

impl ServeConfig {
    /// Overrides the shard count (builder style).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides the cache capacity (builder style; 0 disables).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the total cached-hit admission budget (builder style;
    /// 0 disables the budget).
    pub fn cache_hit_budget(mut self, budget: usize) -> Self {
        self.cache_hit_budget = budget;
        self
    }

    /// Overrides the delta-log capacity (builder style; 0 disables).
    pub fn delta_log(mut self, capacity: usize) -> Self {
        self.delta_log = capacity;
        self
    }

    /// Overrides the replication-tap channel bound (builder style;
    /// 0 makes taps unbounded).
    pub fn feed_depth(mut self, depth: usize) -> Self {
        self.feed_depth = depth;
        self
    }
}

/// Serving-layer counters (monotonic since server construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Micro-batches served.
    pub batches: u64,
    /// Requests answered through batches (≥ batches; the ratio is the
    /// achieved batching factor).
    pub batched_requests: u64,
    /// Deltas published.
    pub published: u64,
    /// Searches answered (cache hits and misses alike; degenerate
    /// requests short-circuited client-side are not counted).
    pub searches: u64,
    /// Replication taps evicted for lagging more than
    /// [`ServeConfig::feed_depth`] publications behind the publisher.
    pub feed_evictions: u64,
}

/// One publication, as seen by a replication tap: the epoch the swap
/// produced, the delta that was applied, and its invalidation
/// signature — everything a replica needs to mirror the publish
/// locally (apply the same delta, invalidate the same cache entries).
#[derive(Debug, Clone, PartialEq)]
pub struct PublishEvent {
    /// The live snapshot's epoch after this publication.
    pub epoch: u64,
    /// The delta the publication applied.
    pub delta: IndexDelta,
    /// The delta's invalidation signature against the pre-delta index.
    pub signature: DeltaSignature,
}

/// A replication tap: the snapshot to bootstrap from plus the stream
/// of every publication after it. Obtained atomically by
/// [`DashServer::replication_feed`] — the first event's epoch is
/// always `snapshot.epoch + 1`, with no publication lost or duplicated
/// in between, which is what lets a replica dump/restore the snapshot
/// and tail the delta stream without re-partitioning or re-crawling.
#[derive(Debug)]
pub struct ReplicationFeed {
    /// The live snapshot at registration time.
    pub snapshot: Arc<EngineSnapshot>,
    /// Every publication with `epoch > snapshot.epoch`, in order. The
    /// publisher never blocks on a tap; a consumer that falls
    /// [`ServeConfig::feed_depth`] publications behind is evicted (the
    /// channel closes mid-stream and the consumer must re-sync).
    /// Dropping the receiver unregisters the tap at the next
    /// publication.
    pub events: Receiver<PublishEvent>,
}

/// A delta-tail resumption: everything a consumer that already holds
/// the state of epoch `base` needs to catch back up without a
/// snapshot. Obtained atomically by
/// [`DashServer::replication_feed_from`]: `backlog` is the logged
/// publications in `(base, registration epoch]` in order, and `events`
/// carries every publication after registration — contiguous with the
/// backlog, no gap and no overlap.
#[derive(Debug)]
pub struct DeltaTail {
    /// The consumer's confirmed epoch (its state before the backlog).
    pub base: u64,
    /// The logged publications with `base < epoch ≤` the registration
    /// epoch, in epoch order.
    pub backlog: Vec<PublishEvent>,
    /// Every publication after the registration epoch (same bounded
    /// semantics as [`ReplicationFeed::events`]).
    pub events: Receiver<PublishEvent>,
}

/// What [`DashServer::replication_feed_from`] hands a (re)joining
/// consumer: a delta tail when the log still covers its epoch, a full
/// snapshot feed otherwise.
#[derive(Debug)]
pub enum CatchUp {
    /// The consumer's epoch fell off the delta log's tail (or it had
    /// no state): bootstrap from the snapshot, then tail the events.
    Snapshot(ReplicationFeed),
    /// The log covers the consumer's epoch: apply the backlog, then
    /// tail the events. No snapshot transfer needed.
    Tail(DeltaTail),
}

/// The sending half of one replication tap.
#[derive(Debug)]
enum Tap {
    /// Evicts the consumer once it lags `feed_depth` events behind.
    Bounded(mpsc::SyncSender<PublishEvent>),
    /// Never evicts (`feed_depth = 0`); the consumer's channel may
    /// grow without limit.
    Unbounded(Sender<PublishEvent>),
}

/// Outcome of feeding one event to a tap.
enum TapFeed {
    Delivered,
    /// Bounded tap full: the consumer is a laggard — evict it.
    Lagging,
    /// Receiver dropped: the consumer unregistered.
    Closed,
}

impl Tap {
    fn feed(&self, event: PublishEvent) -> TapFeed {
        match self {
            Tap::Bounded(sender) => match sender.try_send(event) {
                Ok(()) => TapFeed::Delivered,
                Err(mpsc::TrySendError::Full(_)) => TapFeed::Lagging,
                Err(mpsc::TrySendError::Disconnected(_)) => TapFeed::Closed,
            },
            Tap::Unbounded(sender) => match sender.send(event) {
                Ok(()) => TapFeed::Delivered,
                Err(_) => TapFeed::Closed,
            },
        }
    }
}

/// The bounded ring of recent publications (the delta log): epochs are
/// contiguous from front to back, older entries fall off as new ones
/// push in.
#[derive(Debug)]
struct DeltaLog {
    events: std::collections::VecDeque<PublishEvent>,
    capacity: usize,
}

impl DeltaLog {
    fn new(capacity: usize) -> Self {
        DeltaLog {
            events: std::collections::VecDeque::with_capacity(capacity.min(1024)),
            capacity,
        }
    }

    fn push(&mut self, event: PublishEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// The logged publications with epoch in `(from, back]`, oldest
    /// first — `None` when the log no longer covers `from + 1`
    /// (fallen off the tail, or logging disabled).
    fn tail_after(&self, from: u64) -> Option<Vec<PublishEvent>> {
        let first = self.events.front()?.epoch;
        let last = self.events.back()?.epoch;
        if from + 1 < first || from > last {
            return None;
        }
        Some(
            self.events
                .iter()
                .filter(|e| e.epoch > from)
                .cloned()
                .collect(),
        )
    }
}

/// State shared between callers, the batcher thread and the writer.
#[derive(Debug)]
pub(crate) struct ServerShared {
    pub(crate) handle: SnapshotHandle,
    pub(crate) cache: ResultCache,
    writer: Mutex<WriterSide>,
    /// Per-server metrics registry — the single source the `/stats`
    /// counters and the `/metrics` exposition both read, so the two
    /// endpoints can never disagree. Per-instance on purpose: tests
    /// run many servers per process and each keeps its own tallies.
    registry: Arc<Registry>,
    pub(crate) batches: Arc<Counter>,
    pub(crate) batched_requests: Arc<Counter>,
    published: Arc<Counter>,
    searches: Arc<Counter>,
    feed_evictions: Arc<Counter>,
    /// End-to-end `DashServer::search` latency (cache lookup + batch
    /// wait + engine time).
    search_ns: Arc<Histogram>,
    /// Requests per served micro-batch (the achieved batching factor's
    /// distribution, not just its mean).
    pub(crate) batch_size: Arc<Histogram>,
    /// How long each batch actually spent collecting after its first
    /// job arrived — window occupancy; at the configured window means
    /// the size cap never fired.
    pub(crate) batch_window_ns: Arc<Histogram>,
    /// Publish critical path: signature + shadow apply + cache
    /// invalidation + atomic snapshot swap.
    swap_ns: Arc<Histogram>,
    /// Publish→drain grace: waiting out the retired snapshot's readers
    /// (or forking on bailout) plus the lockstep replay.
    drain_ns: Arc<Histogram>,
    /// Replication taps fed on every publication (closed and lagging
    /// ones pruned).
    taps: Mutex<Vec<Tap>>,
    /// The bounded ring of recent publications (see
    /// [`ServeConfig::delta_log`]).
    delta_log: Mutex<DeltaLog>,
    /// Channel bound applied to each new tap (0 = unbounded).
    feed_depth: usize,
    /// Construction time, the zero point of [`DashServer::uptime`].
    started: Instant,
}

/// The writer's exclusive half of the double buffer.
#[derive(Debug)]
struct WriterSide {
    /// The retired engine being kept in lockstep with the live one.
    /// `None` only transiently inside a publication.
    shadow: Option<ShardedEngine>,
    /// Publication count (the live snapshot's epoch).
    epoch: u64,
}

/// A serving front-end over a [`ShardedEngine`]: cached, micro-batched
/// top-k search that never blocks on index maintenance, plus the
/// writer-side publish path. See the [crate docs](crate) for the
/// architecture.
#[derive(Debug)]
pub struct DashServer {
    shared: Arc<ServerShared>,
    jobs: Option<SyncSender<batch::Job>>,
    batcher: Option<JoinHandle<()>>,
}

impl DashServer {
    /// Crawls `db` and opens a server — the serving counterpart of the
    /// [`IngestSource::Crawl`] build.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedEngine::builder`] with a crawl source.
    pub fn build(
        app: &WebApplication,
        db: &Database,
        config: &DashConfig,
        serve: ServeConfig,
    ) -> Result<Self> {
        let engine = ShardedEngine::builder(app.clone())
            .shards(serve.shards)
            .source(IngestSource::Crawl { db, config })
            .build()?;
        Ok(Self::from_engine(engine, serve))
    }

    /// Opens a server over already-derived fragments.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedEngine::builder`] with a
    /// [`IngestSource::Fragments`] source.
    pub fn from_fragments(
        app: WebApplication,
        fragments: &[Fragment],
        serve: ServeConfig,
    ) -> Result<Self> {
        let engine = ShardedEngine::builder(app)
            .shards(serve.shards)
            .source(IngestSource::Fragments(fragments))
            .build()?;
        Ok(Self::from_engine(engine, serve))
    }

    /// Wraps a built engine: forks the shadow side, wires the snapshot
    /// handle and cache, and starts the batcher thread.
    pub fn from_engine(engine: ShardedEngine, serve: ServeConfig) -> Self {
        Self::from_engine_at_epoch(engine, serve, 0)
    }

    /// [`DashServer::from_engine`], opening at a carried epoch instead
    /// of 0. This is how a replica (or a promoted ex-replica) keeps
    /// epoch numbering **cluster-wide**: its local server opens at the
    /// primary epoch its bootstrap state corresponds to, so every
    /// local publication lands on exactly the primary epoch of the
    /// delta that caused it — and the node's own delta log speaks the
    /// same epochs as the primary's.
    pub fn from_engine_at_epoch(engine: ShardedEngine, serve: ServeConfig, epoch: u64) -> Self {
        let shadow = engine.fork();
        let registry = Arc::new(Registry::new());
        let shared = Arc::new(ServerShared {
            handle: SnapshotHandle::new(engine, epoch),
            cache: ResultCache::new(serve.cache_capacity, serve.cache_hit_budget),
            writer: Mutex::new(WriterSide {
                shadow: Some(shadow),
                epoch,
            }),
            batches: registry.counter("dash_serve_batches_total"),
            batched_requests: registry.counter("dash_serve_batched_requests_total"),
            published: registry.counter("dash_serve_published_total"),
            searches: registry.counter("dash_serve_searches_total"),
            feed_evictions: registry.counter("dash_serve_feed_evictions_total"),
            search_ns: registry.histogram("dash_serve_search_ns"),
            batch_size: registry.histogram("dash_serve_batch_size"),
            batch_window_ns: registry.histogram("dash_serve_batch_window_ns"),
            swap_ns: registry.histogram("dash_serve_swap_ns"),
            drain_ns: registry.histogram("dash_serve_drain_ns"),
            registry,
            taps: Mutex::new(Vec::new()),
            delta_log: Mutex::new(DeltaLog::new(serve.delta_log)),
            feed_depth: serve.feed_depth,
            started: Instant::now(),
        });
        let (jobs, queue) = mpsc::sync_channel(serve.queue_bound.max(1));
        let batcher_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("dash-serve-batcher".to_string())
            .spawn(move || batch::run(queue, batcher_shared, serve.batch_window, serve.max_batch))
            .expect("spawn batcher thread");
        DashServer {
            shared,
            jobs: Some(jobs),
            batcher: Some(batcher),
        }
    }

    /// Top-k db-page search through the full serving path: result
    /// cache, then the micro-batcher against the current snapshot.
    /// Byte-identical to [`DashEngine::search`](dash_core::DashEngine::search)
    /// over the engine's current fragments — cached or not, whatever
    /// batch it lands in, before or after any published delta.
    pub fn search(&self, request: &SearchRequest) -> Vec<SearchHit> {
        if request.k == 0 || request.keywords.is_empty() {
            return Vec::new();
        }
        let _span = SpanGuard::start(&self.shared.search_ns);
        self.shared.searches.inc();
        if let Some(hits) = self.shared.cache.get(request) {
            return hits;
        }
        let (reply, answer) = mpsc::channel();
        self.jobs
            .as_ref()
            .expect("queue open while server alive")
            .send(batch::Job {
                request: request.clone(),
                reply,
            })
            .expect("batcher alive");
        answer.recv().expect("batcher answers every job")
    }

    /// Accounts one search answered by a fronting cache layer (the net
    /// tier's pre-serialized response cache) without re-running it
    /// here: bumps the search and cache-hit counters so `/stats` keeps
    /// reporting every served search, wherever the bytes came from.
    pub fn count_cache_hit(&self) {
        self.shared.searches.inc();
        self.shared.cache.note_hit();
    }

    /// Batched client-side search: enqueues every cache-missing request
    /// before collecting any answer, so one caller's burst can share a
    /// micro-batch instead of serializing. Results are position-aligned
    /// with `requests`, each byte-identical to [`DashServer::search`].
    pub fn search_many(&self, requests: &[SearchRequest]) -> Vec<Vec<SearchHit>> {
        let mut results: Vec<Option<Vec<SearchHit>>> = Vec::with_capacity(requests.len());
        let mut pending: Vec<(usize, mpsc::Receiver<Vec<SearchHit>>)> = Vec::new();
        for (at, request) in requests.iter().enumerate() {
            if request.k == 0 || request.keywords.is_empty() {
                results.push(Some(Vec::new()));
                continue;
            }
            self.shared.searches.inc();
            if let Some(hits) = self.shared.cache.get(request) {
                results.push(Some(hits));
                continue;
            }
            let (reply, answer) = mpsc::channel();
            self.jobs
                .as_ref()
                .expect("queue open while server alive")
                .send(batch::Job {
                    request: request.clone(),
                    reply,
                })
                .expect("batcher alive");
            results.push(None);
            pending.push((at, answer));
        }
        for (at, answer) in pending {
            results[at] = Some(answer.recv().expect("batcher answers every job"));
        }
        results
            .into_iter()
            .map(|hits| hits.expect("every slot answered"))
            .collect()
    }

    /// Publishes a prebuilt delta: applies it to the shadow engine,
    /// atomically swaps the shadow in as the new live snapshot,
    /// invalidates exactly the cache entries the delta's signature can
    /// touch, then catches the retired side up with the same delta.
    /// Concurrent searches keep running against whichever snapshot
    /// they grabbed; once `publish` returns, every *new* search
    /// observes the delta.
    pub fn publish(&self, delta: IndexDelta) -> RefreshStats {
        self.publish_with_epoch(delta).0
    }

    /// [`DashServer::publish`], additionally returning the epoch this
    /// publication produced (the current epoch if the delta was
    /// empty). Under concurrent publishers this is the only reliable
    /// way to learn "my" epoch — a separate [`DashServer::epoch`] read
    /// can already observe a later publication.
    pub fn publish_with_epoch(&self, delta: IndexDelta) -> (RefreshStats, u64) {
        let mut writer = self.shared.writer.lock();
        self.publish_locked(&mut writer, delta)
    }

    /// Builds and publishes the delta for one record insertion (`db`
    /// must already contain the record) — the serving counterpart of
    /// [`ShardedEngine::apply_insert`].
    ///
    /// # Errors
    ///
    /// Propagates relational errors.
    pub fn apply_insert(
        &self,
        db: &Database,
        relation: &str,
        record: &Record,
    ) -> Result<RefreshStats> {
        self.apply_changes(db, &[RecordChange::new(relation, record.clone())])
    }

    /// Builds and publishes the delta for one record deletion (`db`
    /// must already have the record removed; `record` is the deleted
    /// row captured beforehand).
    ///
    /// # Errors
    ///
    /// Propagates relational errors.
    pub fn apply_delete(
        &self,
        db: &Database,
        relation: &str,
        record: &Record,
    ) -> Result<RefreshStats> {
        self.apply_changes(db, &[RecordChange::new(relation, record.clone())])
    }

    /// Builds one bulk delta for a batch of record changes (shadow
    /// joins batched per relation, one scoped re-crawl) and publishes
    /// it as a single atomic snapshot swap. `db` must already reflect
    /// every change.
    ///
    /// # Errors
    ///
    /// Propagates relational errors.
    pub fn apply_changes(&self, db: &Database, changes: &[RecordChange]) -> Result<RefreshStats> {
        Ok(self.apply_changes_with_epoch(db, changes)?.0)
    }

    /// [`DashServer::apply_changes`], additionally returning the epoch
    /// the publication produced (see
    /// [`DashServer::publish_with_epoch`]).
    ///
    /// # Errors
    ///
    /// Propagates relational errors.
    pub fn apply_changes_with_epoch(
        &self,
        db: &Database,
        changes: &[RecordChange],
    ) -> Result<(RefreshStats, u64)> {
        let mut writer = self.shared.writer.lock();
        let delta = {
            let shadow = writer
                .shadow
                .as_ref()
                .expect("shadow present outside publish");
            bulk_delta(shadow.app(), db, changes)?
        };
        Ok(self.publish_locked(&mut writer, delta))
    }

    /// The publish protocol, under the writer lock. Returns the stats
    /// and the epoch this publication produced (the current epoch for
    /// an empty delta) — callers answering concurrent updaters must
    /// report *this* epoch, not a later re-read that may already be
    /// someone else's publication.
    fn publish_locked(&self, writer: &mut WriterSide, delta: IndexDelta) -> (RefreshStats, u64) {
        if delta.is_empty() {
            return (RefreshStats::default(), writer.epoch);
        }
        let swap_span = SpanGuard::start(&self.shared.swap_ns);
        let mut shadow = writer
            .shadow
            .take()
            .expect("shadow present outside publish");
        // The signature must see the *pre-delta* index: removed
        // fragments' terms widen the keyword axis and are gone after
        // application.
        let signature = shadow.delta_signature(&delta);
        let stats = shadow.apply_delta(delta.clone());
        writer.epoch += 1;
        // Invalidate before the swap: from this instant the cache
        // rejects insertions computed against older snapshots, so no
        // stale entry can slip in behind the sweep.
        self.shared.cache.invalidate(&signature, writer.epoch);
        let next = Arc::new(EngineSnapshot {
            engine: shadow,
            epoch: writer.epoch,
        });
        let retired = self.shared.handle.swap(Arc::clone(&next));
        drop(swap_span);
        // Grace period: wait out the retired snapshot's readers and
        // replay the delta so the next publication starts in lockstep.
        // The wait is bounded: a caller may legitimately hold a
        // `DashServer::snapshot` forever, and the writer must not
        // livelock on it — if the retired side does not drain, abandon
        // it to its holders and fork the freshly published engine as
        // the next shadow instead (an O(index) memcpy, the same cost
        // as server startup).
        // Decide up front whether the publication event is needed — by
        // a registered replication tap or by the delta log. Taps
        // register under the writer lock — which this publication
        // holds — so the answer cannot change mid-publish. Without
        // either the delta is *moved* into the retired-side replay, so
        // a non-replicated log-disabled deployment never pays a clone.
        let event_delta = {
            let log_enabled = self.shared.delta_log.lock().capacity > 0;
            let taps = self.shared.taps.lock();
            (log_enabled || !taps.is_empty()).then(|| delta.clone())
        };
        let drain_span = SpanGuard::start(&self.shared.drain_ns);
        match try_drain(retired, DRAIN_ATTEMPTS) {
            Some(mut retired) => {
                retired.engine.apply_delta(delta);
                writer.shadow = Some(retired.engine);
            }
            None => writer.shadow = Some(next.engine.fork()),
        }
        drop(drain_span);
        self.shared.published.inc();
        // Record the publication in the delta log and feed the
        // replication taps (still under the writer lock, so every tap
        // sees publications in epoch order with no gaps). Sends never
        // block: a bounded tap whose consumer has fallen `feed_depth`
        // publications behind is evicted on the spot — its channel
        // closes and the consumer re-syncs through
        // [`DashServer::replication_feed_from`] — so a stuck replica
        // costs the publisher a bounded channel, never unbounded
        // memory.
        if let Some(delta) = event_delta {
            let event = PublishEvent {
                epoch: writer.epoch,
                delta,
                signature,
            };
            self.shared.delta_log.lock().push(event.clone());
            let mut taps = self.shared.taps.lock();
            let mut evicted = 0u64;
            taps.retain(|tap| match tap.feed(event.clone()) {
                TapFeed::Delivered => true,
                TapFeed::Lagging => {
                    evicted += 1;
                    false
                }
                TapFeed::Closed => false,
            });
            if evicted > 0 {
                self.shared.feed_evictions.add(evicted);
            }
        }
        (stats, writer.epoch)
    }

    /// Registers a replication tap: atomically returns the current
    /// live snapshot and a channel that will deliver **every**
    /// publication after it ([`PublishEvent`]s with
    /// `epoch > snapshot.epoch`, in order, no gaps). This is the
    /// primary half of primary→replica replication: dump the snapshot
    /// to the joining replica, then forward the events — the replica
    /// provably reconstructs the primary's exact state at every epoch.
    pub fn replication_feed(&self) -> ReplicationFeed {
        match self.replication_feed_from(None) {
            CatchUp::Snapshot(feed) => feed,
            CatchUp::Tail(_) => unreachable!("no base epoch offered"),
        }
    }

    /// Registers a replication tap for a consumer that may already
    /// hold state: with `from = Some(epoch)` and a delta log that
    /// still covers `epoch + 1 ..= current`, returns
    /// [`CatchUp::Tail`] — the logged backlog plus the live stream,
    /// contiguous and gap-free, so the consumer catches up **without a
    /// snapshot transfer**. Falls back to [`CatchUp::Snapshot`] (the
    /// [`DashServer::replication_feed`] semantics) when the consumer
    /// has no state, claims a future epoch, or has fallen off the
    /// log's tail.
    pub fn replication_feed_from(&self, from: Option<u64>) -> CatchUp {
        // The writer lock pins the epoch: no publication can land
        // between consulting the log, grabbing the snapshot and
        // registering the tap.
        let writer = self.shared.writer.lock();
        let (tap, events) = if self.shared.feed_depth > 0 {
            let (sender, events) = mpsc::sync_channel(self.shared.feed_depth);
            (Tap::Bounded(sender), events)
        } else {
            let (sender, events) = mpsc::channel();
            (Tap::Unbounded(sender), events)
        };
        self.shared.taps.lock().push(tap);
        if let Some(base) = from {
            let backlog = if base == writer.epoch {
                Some(Vec::new())
            } else if base < writer.epoch {
                self.shared.delta_log.lock().tail_after(base)
            } else {
                None // a future epoch: the consumer is confused — re-snapshot
            };
            if let Some(backlog) = backlog {
                return CatchUp::Tail(DeltaTail {
                    base,
                    backlog,
                    events,
                });
            }
        }
        CatchUp::Snapshot(ReplicationFeed {
            snapshot: self.shared.handle.snapshot(),
            events,
        })
    }

    /// Time since the server was constructed (the denominator of the
    /// qps figure `/stats` reports).
    pub fn uptime(&self) -> Duration {
        self.shared.started.elapsed()
    }

    /// The current live snapshot (engine + epoch). Useful for
    /// inspection and for bypassing the cache/batcher in tests; the
    /// snapshot stays valid however long the caller keeps it.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.shared.handle.snapshot()
    }

    /// The current publication epoch (0 = freshly built).
    pub fn epoch(&self) -> u64 {
        self.shared.handle.snapshot().epoch
    }

    /// Number of indexed fragments in the live snapshot.
    pub fn fragment_count(&self) -> usize {
        self.shared.handle.snapshot().engine.fragment_count()
    }

    /// A copy of the serving counters, read from the same registry
    /// handles `/metrics` renders — the two views cannot drift.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            cache: self.shared.cache.stats(),
            batches: self.shared.batches.get(),
            batched_requests: self.shared.batched_requests.get(),
            published: self.shared.published.get(),
            searches: self.shared.searches.get(),
            feed_evictions: self.shared.feed_evictions.get(),
        }
    }

    /// Live result-cache entry count.
    pub fn cached_results(&self) -> usize {
        self.shared.cache.len()
    }

    /// This server's metrics registry. Per-instance, so two servers
    /// in one process (a replica mirroring a primary, tests) never
    /// mix their numbers; disable recording for the span fast path
    /// via `registry().set_enabled(false)`.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Mirrors the result cache's counters into this server's registry
    /// as `dash_serve_cache_*` gauges. Called at scrape time by
    /// [`DashServer::metrics_text`] (and by the socket front-end's
    /// `/metrics`, which merges this registry into its own exposition).
    pub fn refresh_scrape_gauges(&self) {
        let registry = &self.shared.registry;
        let cache = self.shared.cache.stats();
        registry.gauge("dash_serve_cache_hits").set(cache.hits);
        registry.gauge("dash_serve_cache_misses").set(cache.misses);
        registry
            .gauge("dash_serve_cache_insertions")
            .set(cache.insertions);
        registry
            .gauge("dash_serve_cache_rejected_stale")
            .set(cache.rejected_stale);
        registry
            .gauge("dash_serve_cache_invalidated")
            .set(cache.invalidated);
        registry
            .gauge("dash_serve_cache_evicted")
            .set(cache.evicted);
        registry
            .gauge("dash_serve_cache_rejected_oversize")
            .set(cache.rejected_oversize);
        registry
            .gauge("dash_serve_cached_results")
            .set(self.shared.cache.len() as u64);
    }

    /// Renders the Prometheus text exposition behind `GET /metrics`:
    /// this server's registry merged with [`Registry::global`] (the
    /// shard/replication/ingest layers record there), with the result
    /// cache's counters mirrored in at scrape time.
    pub fn metrics_text(&self) -> String {
        self.refresh_scrape_gauges();
        render_merged(&[&self.shared.registry, Registry::global()])
    }
}

impl Drop for DashServer {
    fn drop(&mut self) {
        // Closing the queue ends the batcher loop; join for a full
        // quiesce (mirrors the shard worker pool's drop).
        self.jobs = None;
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_core::{DashEngine, FragmentId};
    use dash_relation::Value;
    use dash_webapp::fooddb;

    fn server(shards: usize) -> DashServer {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        DashServer::build(
            &app,
            &db,
            &DashConfig::default(),
            ServeConfig::default().shards(shards),
        )
        .unwrap()
    }

    #[test]
    fn serves_the_running_example() {
        let server = server(2);
        let request = SearchRequest::new(&["burger"]).k(2).min_size(20);
        let hits = server.search(&request);
        assert_eq!(hits.len(), 2);
        // Second time around: same bytes, answered from the cache.
        assert_eq!(server.search(&request), hits);
        let stats = server.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert!(stats.batches >= 1);
    }

    #[test]
    fn stats_and_the_metrics_registry_agree() {
        // `/stats` and `/metrics` must be two views of the same
        // handles: every counter `stats()` reports equals the series
        // of the same name in the registry, and both appear in the
        // rendered exposition.
        let server = server(2);
        let request = SearchRequest::new(&["burger"]).k(2).min_size(20);
        server.search(&request);
        server.search(&request);
        server.publish(IndexDelta::adding(vec![Fragment::new(
            FragmentId::new(vec![Value::str("Nordic"), Value::Int(7)]),
            [("herring".to_string(), 3u64)].into_iter().collect(),
            1,
        )]));
        let stats = server.stats();
        let registry = server.registry();
        for (name, got) in [
            ("dash_serve_searches_total", stats.searches),
            ("dash_serve_batches_total", stats.batches),
            ("dash_serve_batched_requests_total", stats.batched_requests),
            ("dash_serve_published_total", stats.published),
            ("dash_serve_feed_evictions_total", stats.feed_evictions),
        ] {
            assert_eq!(registry.counter(name).get(), got, "{name}");
        }
        assert_eq!(stats.searches, 2);
        assert_eq!(stats.published, 1);
        let text = server.metrics_text();
        assert!(text.contains("dash_serve_searches_total 2"), "{text}");
        assert!(text.contains("dash_serve_cache_hits 1"), "{text}");
        assert!(
            text.contains("dash_serve_search_ns{quantile=\"0.99\"}"),
            "{text}"
        );
    }

    #[test]
    fn degenerate_requests_short_circuit() {
        let server = server(1);
        assert!(server.search(&SearchRequest::new(&[]).k(5)).is_empty());
        assert!(server
            .search(&SearchRequest::new(&["burger"]).k(0))
            .is_empty());
        assert_eq!(server.stats().batches, 0);
    }

    #[test]
    fn publish_bumps_epoch_and_new_pages_become_findable() {
        let server = server(2);
        assert_eq!(server.epoch(), 0);
        let before = server.fragment_count();
        let fragment = Fragment::new(
            FragmentId::new(vec![Value::str("Nordic"), Value::Int(7)]),
            [("herring".to_string(), 3u64)].into_iter().collect(),
            1,
        );
        let stats = server.publish(IndexDelta::adding(vec![fragment]));
        assert_eq!((stats.removed, stats.added), (0, 1));
        assert_eq!(server.epoch(), 1);
        assert_eq!(server.fragment_count(), before + 1);
        let hits = server.search(&SearchRequest::new(&["herring"]).k(3).min_size(1));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].url.contains("c=Nordic"), "got {}", hits[0].url);
        // Empty deltas publish nothing.
        assert_eq!(
            server.publish(IndexDelta::default()),
            RefreshStats::default()
        );
        assert_eq!(server.epoch(), 1);
    }

    #[test]
    fn publish_survives_a_long_held_snapshot() {
        // A caller may keep a snapshot indefinitely; the writer must
        // not livelock waiting for it — it forks the new live engine
        // instead and keeps publishing.
        let server = server(2);
        let held = server.snapshot();
        let fragment = |cuisine: &str, word: &str| {
            Fragment::new(
                FragmentId::new(vec![Value::str(cuisine), Value::Int(7)]),
                [(word.to_string(), 2u64)].into_iter().collect(),
                1,
            )
        };
        let stats = server.publish(IndexDelta::adding(vec![fragment("Nordic", "herring")]));
        assert_eq!(stats.added, 1);
        // The held snapshot still serves its own epoch, untouched.
        assert_eq!(held.epoch, 0);
        assert!(held
            .engine
            .search(&SearchRequest::new(&["herring"]).k(1).min_size(1))
            .is_empty());
        // And the server keeps accepting publications (the shadow was
        // rebuilt by fork, not reclaimed from the held snapshot).
        let stats = server.publish(IndexDelta::adding(vec![fragment("Basque", "txakoli")]));
        assert_eq!(stats.added, 1);
        assert_eq!(server.epoch(), 2);
        for word in ["herring", "txakoli"] {
            assert_eq!(
                server
                    .search(&SearchRequest::new(&[word]).k(1).min_size(1))
                    .len(),
                1,
                "{word} must be served post-publish"
            );
        }
        drop(held);
    }

    #[test]
    fn cached_results_never_go_stale_across_publications() {
        let server = server(2);
        let request = SearchRequest::new(&["burger"]).k(5).min_size(1);
        let first = server.search(&request);
        assert_eq!(server.search(&request), first); // cached now
                                                    // A new burger-bearing fragment changes IDF and the result set;
                                                    // the publication must invalidate the cached entry.
        let fragment = Fragment::new(
            FragmentId::new(vec![Value::str("Zulu"), Value::Int(30)]),
            [("burger".to_string(), 9u64)].into_iter().collect(),
            1,
        );
        server.publish(IndexDelta::adding(vec![fragment.clone()]));
        let app = fooddb::search_application().unwrap();
        let db = fooddb::database();
        let mut fragments = dash_core::crawl::reference::fragments(&app, &db).unwrap();
        fragments.push(fragment);
        let fresh =
            DashEngine::from_fragments(app, &fragments, dash_mapreduce::WorkflowStats::new())
                .unwrap();
        let expected = fresh.search(&request);
        assert_ne!(expected, first, "the delta must actually change the result");
        assert_eq!(server.search(&request), expected);
    }

    #[test]
    fn replication_feed_sees_every_later_publication_and_none_before() {
        let server = server(2);
        let fragment = |cuisine: &str, word: &str| {
            Fragment::new(
                FragmentId::new(vec![Value::str(cuisine), Value::Int(7)]),
                [(word.to_string(), 2u64)].into_iter().collect(),
                1,
            )
        };
        // A publication before the tap is registered is bootstrap
        // state, not an event.
        server.publish(IndexDelta::adding(vec![fragment("Nordic", "herring")]));
        let feed = server.replication_feed();
        assert_eq!(feed.snapshot.epoch, 1);
        assert!(feed.events.try_recv().is_err(), "no events before reg");
        server.publish(IndexDelta::adding(vec![fragment("Basque", "txakoli")]));
        server.publish(IndexDelta::removing(vec![FragmentId::new(vec![
            Value::str("Nordic"),
            Value::Int(7),
        ])]));
        let first = feed.events.recv().expect("first event");
        let second = feed.events.recv().expect("second event");
        assert_eq!((first.epoch, second.epoch), (2, 3));
        assert_eq!(first.delta.adds[0].id.values()[0], Value::str("Basque"));
        assert!(first.signature.keywords.contains("txakoli"));
        assert!(second.delta.adds.is_empty());
        // Dropping the receiver unregisters the tap at the next
        // publication (no leak, no publish error).
        drop(feed);
        server.publish(IndexDelta::adding(vec![fragment("Lao", "larb")]));
        assert_eq!(server.epoch(), 4);
    }

    fn cuisine_fragment(cuisine: &str, word: &str) -> Fragment {
        Fragment::new(
            FragmentId::new(vec![Value::str(cuisine), Value::Int(7)]),
            [(word.to_string(), 2u64)].into_iter().collect(),
            1,
        )
    }

    #[test]
    fn lagging_feed_is_evicted_instead_of_buffering_without_bound() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let server = DashServer::build(
            &app,
            &db,
            &DashConfig::default(),
            ServeConfig::default().shards(1).feed_depth(2),
        )
        .unwrap();
        let feed = server.replication_feed();
        // Publish past the tap bound without consuming: the third
        // publication finds the channel full and evicts the tap —
        // publishing itself never blocks.
        for (at, word) in ["herring", "txakoli", "larb", "injera"].iter().enumerate() {
            server.publish(IndexDelta::adding(vec![cuisine_fragment(
                &format!("C{at}"),
                word,
            )]));
        }
        assert_eq!(server.epoch(), 4, "publishing continued past the laggard");
        assert_eq!(server.stats().feed_evictions, 1);
        // The laggard drains what was buffered, then sees the closed
        // channel — its cue to re-sync via replication_feed_from.
        assert_eq!(feed.events.recv().unwrap().epoch, 1);
        assert_eq!(feed.events.recv().unwrap().epoch, 2);
        assert!(feed.events.recv().is_err(), "evicted tap is closed");
    }

    #[test]
    fn delta_tail_resumes_from_a_logged_epoch() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let server = DashServer::build(
            &app,
            &db,
            &DashConfig::default(),
            ServeConfig::default().shards(2).delta_log(8),
        )
        .unwrap();
        for (at, word) in ["herring", "txakoli", "larb"].iter().enumerate() {
            server.publish(IndexDelta::adding(vec![cuisine_fragment(
                &format!("C{at}"),
                word,
            )]));
        }
        // A consumer at epoch 1 tails the log: backlog is exactly
        // epochs 2 and 3, and later publications flow on the channel.
        let CatchUp::Tail(tail) = server.replication_feed_from(Some(1)) else {
            panic!("epoch 1 is on the log");
        };
        assert_eq!(tail.base, 1);
        assert_eq!(
            tail.backlog.iter().map(|e| e.epoch).collect::<Vec<_>>(),
            vec![2, 3]
        );
        server.publish(IndexDelta::adding(vec![cuisine_fragment("C9", "mole")]));
        assert_eq!(tail.events.recv().unwrap().epoch, 4);
        // A consumer already current gets an empty backlog.
        let CatchUp::Tail(tail) = server.replication_feed_from(Some(4)) else {
            panic!("current epoch needs no backlog");
        };
        assert!(tail.backlog.is_empty());
        // A consumer claiming a future epoch re-snapshots.
        assert!(matches!(
            server.replication_feed_from(Some(99)),
            CatchUp::Snapshot(_)
        ));
    }

    #[test]
    fn fallen_off_the_log_tail_means_snapshot() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let server = DashServer::build(
            &app,
            &db,
            &DashConfig::default(),
            ServeConfig::default().shards(1).delta_log(2),
        )
        .unwrap();
        for (at, word) in ["herring", "txakoli", "larb", "injera"].iter().enumerate() {
            server.publish(IndexDelta::adding(vec![cuisine_fragment(
                &format!("C{at}"),
                word,
            )]));
        }
        // The ring holds epochs {3, 4}: epoch 2 can still tail (its
        // successor is logged), epoch 1 has fallen off.
        assert!(matches!(
            server.replication_feed_from(Some(2)),
            CatchUp::Tail(_)
        ));
        assert!(matches!(
            server.replication_feed_from(Some(1)),
            CatchUp::Snapshot(_)
        ));
        // Disabled log: every stateful consumer re-snapshots.
        let unlogged = DashServer::build(
            &app,
            &db,
            &DashConfig::default(),
            ServeConfig::default().shards(1).delta_log(0),
        )
        .unwrap();
        unlogged.publish(IndexDelta::adding(vec![cuisine_fragment("C9", "mole")]));
        assert!(matches!(
            unlogged.replication_feed_from(Some(0)),
            CatchUp::Snapshot(_)
        ));
    }

    #[test]
    fn a_server_can_open_at_a_carried_epoch() {
        // A replica's local server opens at the primary epoch its
        // bootstrap state corresponds to; publications continue the
        // cluster-wide numbering.
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let engine = ShardedEngine::builder(app.clone())
            .shards(2)
            .source(IngestSource::Crawl {
                db: &db,
                config: &DashConfig::default(),
            })
            .build()
            .unwrap();
        let server = DashServer::from_engine_at_epoch(engine, ServeConfig::default(), 7);
        assert_eq!(server.epoch(), 7);
        let (_, epoch) =
            server.publish_with_epoch(IndexDelta::adding(vec![cuisine_fragment("C0", "herring")]));
        assert_eq!(epoch, 8);
        assert_eq!(server.snapshot().epoch, 8);
    }

    #[test]
    fn stats_count_searches_and_uptime_advances() {
        let server = server(1);
        let request = SearchRequest::new(&["burger"]).k(2).min_size(20);
        server.search(&request);
        server.search(&request); // cache hit — still a served search
        server.search(&SearchRequest::new(&[]).k(5)); // degenerate: uncounted
        let stats = server.stats();
        assert_eq!(stats.searches, 2);
        assert!(server.uptime() > Duration::ZERO);
    }

    #[test]
    fn search_many_mixes_cached_and_fresh() {
        let server = server(2);
        let warm = SearchRequest::new(&["burger"]).k(2).min_size(20);
        let warm_hits = server.search(&warm);
        let requests = vec![
            warm.clone(),
            SearchRequest::new(&["thai"]).k(2).min_size(5),
            SearchRequest::new(&[]).k(3),
            warm.clone(),
        ];
        let results = server.search_many(&requests);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0], warm_hits);
        assert_eq!(results[3], warm_hits);
        assert!(results[2].is_empty());
        assert_eq!(results[1], server.search(&requests[1]));
    }

    #[test]
    fn concurrent_clients_get_identical_answers() {
        let server = server(4);
        let requests: Vec<SearchRequest> = [
            ("burger", 2usize, 20u64),
            ("fries", 3, 1),
            ("thai", 2, 5),
            ("american", 10, 1),
        ]
        .iter()
        .map(|&(w, k, s)| SearchRequest::new(&[w]).k(k).min_size(s))
        .collect();
        let expected: Vec<_> = requests.iter().map(|r| server.search(r)).collect();
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let requests = &requests;
                let expected = &expected;
                let server = &server;
                scope.spawn(move || {
                    for (request, expected) in requests.iter().zip(expected) {
                        assert_eq!(&server.search(request), expected);
                    }
                });
            }
        });
        let stats = server.stats();
        assert!(stats.cache.hits >= 1, "repeat traffic must hit the cache");
    }
}
