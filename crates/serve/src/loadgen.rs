//! A deterministic closed-loop load generator for [`DashServer`]:
//! concurrent clients issuing mixed search/update traffic, reporting
//! p50/p99 latency and sustained qps.
//!
//! **Closed loop**: every client issues its next operation only after
//! the previous one completed, so offered load adapts to serving
//! capacity (the queue bound back-pressures instead of building an
//! unbounded backlog) and latency percentiles describe real
//! end-to-end request times.
//!
//! **Deterministic**: the operation scripts are a pure function of the
//! [`LoadProfile`] (seeded xoshiro streams, one per client) — two runs
//! with the same profile, vocabulary and update pool issue exactly the
//! same requests and publish exactly the same deltas, in the same
//! per-client order. Updates are issued by client 0 only, so the final
//! index state is deterministic too, which is what lets CI assert
//! "after the smoke run, served results still equal a fresh engine".
//! Wall-clock measurements (latency, qps) naturally vary run to run.

use std::time::{Duration, Instant};

use dash_core::{Fragment, IndexDelta, SearchRequest};
use rand::distr::Zipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{DashServer, ServeStats};

/// Shape of one load run.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Operations each client issues (searches, plus client 0's
    /// updates, which replace a search slot).
    pub ops_per_client: usize,
    /// Client 0 publishes a delta every `update_every`-th operation;
    /// 0 disables updates (search-only traffic).
    pub update_every: usize,
    /// Keywords per search, drawn uniformly from `1..=max_keywords`.
    pub max_keywords: usize,
    /// `k` of every search request.
    pub k: usize,
    /// Size thresholds sampled per request.
    pub min_sizes: Vec<u64>,
    /// Zipf exponent of the keyword draw: `0.0` (the default) picks
    /// keywords uniformly from the vocabulary; a positive exponent
    /// draws vocabulary *ranks* from [`rand::distr::Zipf`], so
    /// `vocab[0]` is the hottest term. Scale benches set this to the
    /// exponent their corpus was generated with, making query traffic
    /// hit the index the way the corpus was built (realistic cache-hit
    /// rates).
    pub keyword_skew: f64,
    /// Root seed; client `i` derives its stream from `seed + i`.
    pub seed: u64,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            clients: 4,
            ops_per_client: 200,
            update_every: 16,
            max_keywords: 2,
            k: 10,
            min_sizes: vec![1, 20, 100],
            keyword_skew: 0.0,
            seed: 7,
        }
    }
}

/// One scripted client operation.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadOp {
    /// A keyword search through the full serving path
    /// (cache → batcher → snapshot).
    Search(SearchRequest),
    /// A delta publication (client 0 only): an upsert or removal drawn
    /// from the update pool.
    Update(IndexDelta),
}

/// The deterministic per-client scripts for a profile: `vocab` is the
/// search keyword pool, `update_pool` the fragments update traffic
/// churns (upserts re-add a pool fragment with a bumped occurrence
/// count; removals delete it). Pure — no clock, no global RNG.
pub fn scripts(
    profile: &LoadProfile,
    vocab: &[String],
    update_pool: &[Fragment],
) -> Vec<Vec<LoadOp>> {
    assert!(!vocab.is_empty(), "load generation needs a vocabulary");
    assert!(
        !profile.min_sizes.is_empty(),
        "load generation needs at least one min_size"
    );
    // Built once per call: the cumulative table is O(vocab), not
    // something to redo per keyword. `None` keeps the exact uniform
    // draw (and RNG stream) profiles without skew always had.
    let zipf = (profile.keyword_skew > 0.0).then(|| Zipf::new(vocab.len(), profile.keyword_skew));
    (0..profile.clients)
        .map(|client| {
            let mut rng = StdRng::seed_from_u64(profile.seed.wrapping_add(client as u64));
            (0..profile.ops_per_client)
                .map(|op| {
                    let updating = client == 0
                        && profile.update_every > 0
                        && !update_pool.is_empty()
                        && op % profile.update_every == profile.update_every - 1;
                    if updating {
                        let target = &update_pool[rng.random_range(0..update_pool.len())];
                        if rng.random_range(0u32..4) == 0 {
                            LoadOp::Update(IndexDelta::removing(vec![target.id.clone()]))
                        } else {
                            let mut occurrences = target.keyword_occurrences.clone();
                            let bump = rng.random_range(1u64..4);
                            if let Some(count) = occurrences.values_mut().next() {
                                *count += bump;
                            }
                            LoadOp::Update(IndexDelta::new(
                                vec![target.id.clone()],
                                vec![Fragment::new(
                                    target.id.clone(),
                                    occurrences,
                                    target.record_count,
                                )],
                            ))
                        }
                    } else {
                        let words = rng.random_range(1..=profile.max_keywords.max(1));
                        let keywords: Vec<&str> = (0..words)
                            .map(|_| {
                                let rank = match &zipf {
                                    Some(zipf) => zipf.sample(&mut rng),
                                    None => rng.random_range(0..vocab.len()),
                                };
                                vocab[rank].as_str()
                            })
                            .collect();
                        let min_size =
                            profile.min_sizes[rng.random_range(0..profile.min_sizes.len())];
                        LoadOp::Search(
                            SearchRequest::new(&keywords)
                                .k(profile.k)
                                .min_size(min_size),
                        )
                    }
                })
                .collect()
        })
        .collect()
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Searches completed (across all clients).
    pub searches: u64,
    /// Deltas published.
    pub updates: u64,
    /// Total hits returned (a cheap checksum that the run did work).
    pub total_hits: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Median end-to-end search latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile search latency, nanoseconds.
    pub p99_ns: u64,
    /// Sustained search throughput (searches / elapsed).
    pub qps: f64,
    /// Serving-layer counters after the run.
    pub stats: ServeStats,
    /// Per-stage latency table rendered from the server's `/metrics`
    /// registry after the run (`dash_obs::expo::stage_table`) — where
    /// the p99 lives, not just that it exists.
    pub stage_table: String,
}

impl LoadReport {
    /// Renders the report as one human-readable line.
    pub fn summary(&self) -> String {
        format!(
            "{} searches + {} updates in {:.2?}: {:.0} qps, p50 {:.1}µs, p99 {:.1}µs, \
             cache {}/{} hit",
            self.searches,
            self.updates,
            self.elapsed,
            self.qps,
            self.p50_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3,
            self.stats.cache.hits,
            self.stats.cache.hits + self.stats.cache.misses,
        )
    }
}

/// Runs the profile's scripts against a server, concurrently, and
/// aggregates latency/throughput. The server keeps running afterwards
/// (callers can verify post-run state — see
/// `tests/serve_equivalence.rs`).
pub fn run(
    server: &DashServer,
    vocab: &[String],
    update_pool: &[Fragment],
    profile: &LoadProfile,
) -> LoadReport {
    let scripts = scripts(profile, vocab, update_pool);
    let started = Instant::now();
    let per_client: Vec<(Vec<u64>, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .into_iter()
            .map(|script| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(script.len());
                    let mut updates = 0u64;
                    let mut total_hits = 0u64;
                    for op in script {
                        match op {
                            LoadOp::Search(request) => {
                                let begin = Instant::now();
                                let hits = server.search(&request);
                                latencies.push(begin.elapsed().as_nanos() as u64);
                                total_hits += hits.len() as u64;
                            }
                            LoadOp::Update(delta) => {
                                server.publish(delta);
                                updates += 1;
                            }
                        }
                    }
                    (latencies, updates, total_hits)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut latencies: Vec<u64> = Vec::new();
    let mut updates = 0u64;
    let mut total_hits = 0u64;
    for (lat, up, hits) in per_client {
        latencies.extend(lat);
        updates += up;
        total_hits += hits;
    }
    latencies.sort_unstable();
    let searches = latencies.len() as u64;
    LoadReport {
        searches,
        updates,
        total_hits,
        elapsed,
        p50_ns: percentile(&latencies, 50),
        p99_ns: percentile(&latencies, 99),
        qps: searches as f64 / elapsed.as_secs_f64().max(1e-9),
        stats: server.stats(),
        stage_table: dash_obs::expo::stage_table(&dash_obs::expo::parse_summaries(
            &server.metrics_text(),
        )),
    }
}

/// The `q`-th percentile of an ascending-sorted sample (nearest-rank).
/// Public because the socket-level load generator (`dash-net`)
/// aggregates its latencies with the same definition.
pub fn percentile(sorted: &[u64], q: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() - 1) * q as usize / 100;
    sorted[rank]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_core::FragmentId;
    use dash_relation::Value;

    fn pool() -> Vec<Fragment> {
        vec![Fragment::new(
            FragmentId::new(vec![Value::str("Synthetic"), Value::Int(5)]),
            [("widget".to_string(), 1u64)].into_iter().collect(),
            1,
        )]
    }

    #[test]
    fn scripts_are_deterministic_and_route_updates_to_client_zero() {
        let profile = LoadProfile {
            clients: 3,
            ops_per_client: 40,
            update_every: 8,
            ..LoadProfile::default()
        };
        let vocab = vec!["burger".to_string(), "fries".to_string()];
        let a = scripts(&profile, &vocab, &pool());
        let b = scripts(&profile, &vocab, &pool());
        assert_eq!(a, b, "same profile must script identical traffic");
        assert_eq!(a.len(), 3);
        assert!(a[0].iter().any(|op| matches!(op, LoadOp::Update(_))));
        for client in &a[1..] {
            assert!(
                client.iter().all(|op| matches!(op, LoadOp::Search(_))),
                "only client 0 publishes updates"
            );
        }
    }

    #[test]
    fn keyword_skew_concentrates_on_hot_terms() {
        let vocab: Vec<String> = (0..50).map(|i| format!("word{i}")).collect();
        let uniform = LoadProfile {
            clients: 1,
            ops_per_client: 500,
            update_every: 0,
            max_keywords: 1,
            ..LoadProfile::default()
        };
        let skewed = LoadProfile {
            keyword_skew: 1.2,
            ..uniform.clone()
        };
        let hot_share = |profile: &LoadProfile| {
            let script = &scripts(profile, &vocab, &[])[0];
            script
                .iter()
                .filter(|op| match op {
                    LoadOp::Search(r) => r.keywords.contains(&"word0".to_string()),
                    LoadOp::Update(_) => false,
                })
                .count()
        };
        let uniform_hits = hot_share(&uniform);
        let skewed_hits = hot_share(&skewed);
        assert!(
            skewed_hits > 4 * uniform_hits.max(1),
            "skewed {skewed_hits} vs uniform {uniform_hits}"
        );
        // Skewed scripts stay deterministic too.
        assert_eq!(scripts(&skewed, &vocab, &[]), scripts(&skewed, &vocab, &[]));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sample, 50), 50);
        assert_eq!(percentile(&sample, 99), 99);
        assert_eq!(percentile(&sample, 0), 1);
        assert_eq!(percentile(&[], 50), 0);
    }
}
