//! The keyed LRU result cache, invalidated *precisely* by published
//! delta signatures instead of flushed wholesale.
//!
//! An entry remembers the two things a future delta could perturb:
//!
//! * its **candidate groups** — the equality groups that held at least
//!   one posting of a request keyword when the result was computed
//!   (every page Algorithm 1 can emit or even consider lives in one of
//!   them, and absorption/expansion never leaves a group);
//! * its **request keywords** — whose document frequencies (hence IDF,
//!   hence every score) a delta shifts exactly when it adds or removes
//!   postings for them.
//!
//! A published [`DeltaSignature`] carries the touched groups and the
//! added/removed keywords; an entry survives iff both intersections
//! are empty — in which case the cached hit list is provably still
//! byte-identical to a fresh search (`tests/serve_equivalence.rs`
//! proves it over random interleavings). Insertions are epoch-checked:
//! a result computed against a snapshot that is no longer the latest
//! published state is dropped rather than cached, closing the race
//! between a long-running batch and a concurrent publication.

use std::collections::{BTreeSet, HashMap, VecDeque};

use dash_core::{DeltaSignature, SearchHit, SearchRequest};
use dash_relation::Value;
use parking_lot::Mutex;

/// Cache identity of a search: the full request, field by field — two
/// requests hit the same entry only when byte-identical answers are
/// guaranteed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    keywords: Vec<String>,
    k: usize,
    min_size: u64,
}

impl From<&SearchRequest> for CacheKey {
    fn from(request: &SearchRequest) -> Self {
        CacheKey {
            keywords: request.keywords.clone(),
            k: request.k,
            min_size: request.min_size,
        }
    }
}

/// One cached result with its invalidation dependencies.
#[derive(Debug)]
struct Entry {
    hits: Vec<SearchHit>,
    /// Candidate groups at computation time (see module docs).
    groups: BTreeSet<Vec<Value>>,
    /// The request's keywords, set-shaped for signature intersection.
    keywords: BTreeSet<String>,
    /// Recency stamp; an entry is LRU-evictable when its stamp is the
    /// oldest live one.
    tick: u64,
}

/// Counters the serving layer exposes (see
/// [`DashServer::stats`](crate::DashServer::stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Insertions dropped because their snapshot epoch was stale.
    pub rejected_stale: u64,
    /// Entries removed by delta-signature invalidation.
    pub invalidated: u64,
    /// Entries evicted by the LRU capacity bound or the hit budget.
    pub evicted: u64,
    /// Insertions refused because one result set alone would exceed
    /// the total cached-hit budget.
    pub rejected_oversize: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// The latest published epoch the cache has been synchronized to.
    epoch: u64,
    tick: u64,
    /// Total `SearchHit`s across all live entries — the quantity the
    /// admission budget bounds (entry count alone says nothing about
    /// memory when one entry can hold a thousand-hit result set).
    total_hits: usize,
    map: HashMap<CacheKey, Entry>,
    /// Lazy LRU order: `(tick, key)` pairs, stale ones skipped at
    /// eviction time (an entry's authoritative stamp lives in the map).
    order: VecDeque<(u64, CacheKey)>,
    stats: CacheStats,
}

impl Inner {
    /// Drops stale recency records once they outnumber live entries
    /// 2:1 — hits append to `order` but eviction only pops it while
    /// *over* capacity, so a hit-heavy steady state would otherwise
    /// grow the queue without bound. Rebuilding from the map's
    /// authoritative stamps is O(n log n), amortized over the ≥ n
    /// touches it took to trigger.
    fn compact(&mut self) {
        if self.order.len() <= 2 * self.map.len() + 16 {
            return;
        }
        let mut live: Vec<(u64, CacheKey)> = self
            .map
            .iter()
            .map(|(key, entry)| (entry.tick, key.clone()))
            .collect();
        live.sort_unstable_by_key(|(tick, _)| *tick);
        self.order = live.into();
    }
}

/// The keyed LRU result cache fronting the snapshot handle.
#[derive(Debug)]
pub(crate) struct ResultCache {
    capacity: usize,
    /// Admission budget on total cached hits (0 = unlimited): an
    /// insert whose result set alone exceeds it is refused; an
    /// admissible insert evicts LRU entries until the total fits.
    hit_budget: usize,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// A cache holding at most `capacity` results totalling at most
    /// `hit_budget` hits; capacity 0 disables caching entirely (every
    /// lookup misses, every insert is dropped), budget 0 disables the
    /// hit bound.
    pub(crate) fn new(capacity: usize, hit_budget: usize) -> Self {
        ResultCache {
            capacity,
            hit_budget,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether inserts can ever be stored.
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks up a request, refreshing its recency on a hit.
    pub(crate) fn get(&self, request: &SearchRequest) -> Option<Vec<SearchHit>> {
        if self.capacity == 0 {
            return None;
        }
        let key = CacheKey::from(request);
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.tick = tick;
                let hits = entry.hits.clone();
                inner.order.push_back((tick, key));
                inner.stats.hits += 1;
                inner.compact();
                Some(hits)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a result computed against snapshot `epoch`, with its
    /// candidate groups as invalidation dependencies. Dropped when the
    /// cache has already synchronized past that epoch (the result may
    /// predate a delta whose signature would have invalidated it).
    pub(crate) fn insert(
        &self,
        request: &SearchRequest,
        hits: Vec<SearchHit>,
        groups: BTreeSet<Vec<Value>>,
        epoch: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if epoch != inner.epoch {
            inner.stats.rejected_stale += 1;
            return;
        }
        // Admission control: a result set that alone blows the hit
        // budget must not be admitted — storing it would evict the
        // whole rest of the cache for one entry that still violates
        // the bound.
        if self.hit_budget > 0 && hits.len() > self.hit_budget {
            inner.stats.rejected_oversize += 1;
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        let key = CacheKey::from(request);
        let entry = Entry {
            hits,
            groups,
            keywords: request.keywords.iter().cloned().collect(),
            tick,
        };
        inner.order.push_back((tick, key.clone()));
        inner.total_hits += entry.hits.len();
        if let Some(replaced) = inner.map.insert(key, entry) {
            inner.total_hits -= replaced.hits.len();
        }
        inner.stats.insertions += 1;
        // Evict-on-admit: shed LRU entries while either bound — entry
        // count or total cached hits — is violated. The fresh entry is
        // the newest in recency order and fits the budget alone, so
        // the loop always terminates before reaching it.
        while inner.map.len() > self.capacity
            || (self.hit_budget > 0 && inner.total_hits > self.hit_budget)
        {
            let Some((tick, key)) = inner.order.pop_front() else {
                break;
            };
            // Only the entry's *current* stamp is authoritative; older
            // queue records for a re-touched key are skipped.
            if inner.map.get(&key).is_some_and(|e| e.tick == tick) {
                let evicted = inner.map.remove(&key).expect("entry checked present");
                inner.total_hits -= evicted.hits.len();
                inner.stats.evicted += 1;
            }
        }
        inner.compact();
    }

    /// Applies a published delta's signature: removes every entry whose
    /// dependencies intersect it and advances the cache to the new
    /// epoch (stale in-flight insertions are rejected from then on).
    pub(crate) fn invalidate(&self, signature: &DeltaSignature, epoch: u64) {
        let mut inner = self.inner.lock();
        inner.epoch = epoch;
        if self.capacity == 0 {
            return;
        }
        let before = inner.map.len();
        let mut dropped_hits = 0usize;
        inner.map.retain(|_, entry| {
            let keep = !signature.hits(&entry.groups, &entry.keywords);
            if !keep {
                dropped_hits += entry.hits.len();
            }
            keep
        });
        inner.total_hits -= dropped_hits;
        inner.stats.invalidated += (before - inner.map.len()) as u64;
    }

    /// Counts a hit that was answered *outside* this cache — a
    /// fronting layer (the net tier's pre-serialized response cache)
    /// short-circuited a lookup that would have hit here, and the
    /// serving counters must not under-report it.
    pub(crate) fn note_hit(&self) {
        self.inner.lock().stats.hits += 1;
    }

    /// A copy of the counters.
    pub(crate) fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Live entry count.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Total hits across live entries (what the admission budget
    /// bounds).
    #[cfg(test)]
    pub(crate) fn total_hits(&self) -> usize {
        self.inner.lock().total_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(words: &[&str]) -> SearchRequest {
        SearchRequest::new(words).k(3).min_size(10)
    }

    fn entry_groups(names: &[&str]) -> BTreeSet<Vec<Value>> {
        names.iter().map(|n| vec![Value::str(*n)]).collect()
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cache = ResultCache::new(2, 0);
        let (a, b, c) = (request(&["a"]), request(&["b"]), request(&["c"]));
        cache.insert(&a, Vec::new(), entry_groups(&["g1"]), 0);
        cache.insert(&b, Vec::new(), entry_groups(&["g2"]), 0);
        assert!(cache.get(&a).is_some()); // touch a: b is now LRU
        cache.insert(&c, Vec::new(), entry_groups(&["g3"]), 0);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_none());
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().evicted, 1);
    }

    #[test]
    fn signature_invalidation_is_precise() {
        let cache = ResultCache::new(8, 0);
        let by_group = request(&["x"]);
        let by_keyword = request(&["shared"]);
        let untouched = request(&["y"]);
        cache.insert(&by_group, Vec::new(), entry_groups(&["hot"]), 0);
        cache.insert(&by_keyword, Vec::new(), entry_groups(&["cold"]), 0);
        cache.insert(&untouched, Vec::new(), entry_groups(&["cold"]), 0);
        let signature = DeltaSignature {
            groups: entry_groups(&["hot"]),
            keywords: ["shared".to_string()].into_iter().collect(),
        };
        cache.invalidate(&signature, 1);
        assert!(cache.get(&by_group).is_none(), "group overlap must die");
        assert!(cache.get(&by_keyword).is_none(), "keyword overlap must die");
        assert!(cache.get(&untouched).is_some(), "disjoint entry survives");
        assert_eq!(cache.stats().invalidated, 2);
    }

    #[test]
    fn stale_epoch_insertions_are_rejected() {
        let cache = ResultCache::new(8, 0);
        cache.invalidate(&DeltaSignature::default(), 3);
        let r = request(&["late"]);
        cache.insert(&r, Vec::new(), entry_groups(&["g"]), 2);
        assert!(cache.get(&r).is_none());
        assert_eq!(cache.stats().rejected_stale, 1);
        cache.insert(&r, Vec::new(), entry_groups(&["g"]), 3);
        assert!(cache.get(&r).is_some());
    }

    #[test]
    fn hit_heavy_traffic_does_not_grow_the_order_queue_unboundedly() {
        let cache = ResultCache::new(4, 0);
        let r = request(&["hot"]);
        cache.insert(&r, Vec::new(), entry_groups(&["g"]), 0);
        for _ in 0..10_000 {
            assert!(cache.get(&r).is_some());
        }
        let order_len = cache.inner.lock().order.len();
        // One live entry: compact() keeps the queue at ≤ 2·len + 16
        // (+1 for the record pushed right after a compaction).
        assert!(
            order_len <= 19,
            "recency queue must stay bounded, got {order_len}"
        );
        // LRU semantics survive compaction.
        let (b, c) = (request(&["b"]), request(&["c"]));
        cache.insert(&b, Vec::new(), entry_groups(&["g"]), 0);
        cache.insert(&c, Vec::new(), entry_groups(&["g"]), 0);
        cache.insert(&request(&["d"]), Vec::new(), entry_groups(&["g"]), 0);
        cache.insert(&request(&["e"]), Vec::new(), entry_groups(&["g"]), 0);
        assert_eq!(cache.len(), 4);
        assert!(cache.get(&r).is_none(), "oldest-by-recency evicted first");
    }

    #[test]
    fn hit_budget_bounds_total_cached_hits() {
        let hit = |n: usize| -> Vec<SearchHit> {
            (0..n)
                .map(|i| SearchHit {
                    url: format!("u{i}"),
                    query_string: String::new(),
                    score: 1.0,
                    size: 1,
                    fragment_ids: Vec::new(),
                })
                .collect()
        };
        // Plenty of entry capacity; the 10-hit budget is the binding
        // constraint.
        let cache = ResultCache::new(64, 10);
        cache.insert(&request(&["a"]), hit(4), entry_groups(&["g"]), 0);
        cache.insert(&request(&["b"]), hit(4), entry_groups(&["g"]), 0);
        assert_eq!(cache.total_hits(), 8);
        // Admitting 4 more would hit 12 > 10: the LRU entry (a) goes.
        cache.insert(&request(&["c"]), hit(4), entry_groups(&["g"]), 0);
        assert_eq!(cache.total_hits(), 8);
        assert!(cache.get(&request(&["a"])).is_none(), "LRU evicted");
        assert!(cache.get(&request(&["b"])).is_some());
        assert!(cache.get(&request(&["c"])).is_some());
        assert_eq!(cache.stats().evicted, 1);
        // A result set bigger than the whole budget is refused, and
        // the resident entries survive it.
        cache.insert(&request(&["huge"]), hit(11), entry_groups(&["g"]), 0);
        assert!(cache.get(&request(&["huge"])).is_none());
        assert_eq!(cache.stats().rejected_oversize, 1);
        assert_eq!(cache.len(), 2);
        // Replacing an entry accounts for the hits it frees.
        cache.insert(&request(&["b"]), hit(1), entry_groups(&["g"]), 0);
        assert_eq!(cache.total_hits(), 5);
        // Invalidation releases budget too.
        let signature = DeltaSignature {
            groups: entry_groups(&["g"]),
            keywords: BTreeSet::new(),
        };
        cache.invalidate(&signature, 1);
        assert_eq!((cache.len(), cache.total_hits()), (0, 0));
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let cache = ResultCache::new(0, 0);
        let r = request(&["a"]);
        cache.insert(&r, Vec::new(), entry_groups(&["g"]), 0);
        assert!(cache.get(&r).is_none());
        assert!(!cache.enabled());
        assert_eq!(cache.len(), 0);
    }
}
