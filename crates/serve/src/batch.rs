//! Request micro-batching: concurrent callers' searches are collected
//! into one [`ShardedEngine::search_many`] call.
//!
//! Every search pays one shard fan-out (per-request IDF pass, worker
//! dispatch, trace merge); `search_many` amortizes that across a whole
//! batch and reuses one scratch per shard. The batcher is a single
//! thread fed by a **bounded** queue (senders block when serving falls
//! behind — closed-loop backpressure instead of unbounded buffering).
//! It takes the first waiting request, keeps collecting until the
//! batch window elapses or the batch size cap is reached, grabs one
//! snapshot, answers everything against it, and distributes results.
//! Identical requests inside a batch are deduplicated — computed once,
//! answered everywhere.
//!
//! Correctness rides on two already-proven facts: `search_many` is
//! position-aligned and byte-identical to per-request `search`, and a
//! snapshot is an immutable fully-applied state — so *any* grouping of
//! concurrent requests into batches returns exactly what each request
//! would have gotten alone.
//!
//! [`ShardedEngine::search_many`]: dash_core::ShardedEngine::search_many

use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dash_core::{SearchHit, SearchRequest};

use crate::ServerShared;

/// One enqueued search: the request plus the caller's reply channel.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) request: SearchRequest,
    pub(crate) reply: Sender<Vec<SearchHit>>,
}

/// The batcher thread body: drain the queue into micro-batches until
/// every sender (the server) is gone.
pub(crate) fn run(
    jobs: Receiver<Job>,
    shared: Arc<ServerShared>,
    window: Duration,
    max_batch: usize,
) {
    let max_batch = max_batch.max(1);
    while let Ok(first) = jobs.recv() {
        let mut batch = vec![first];
        let opened = Instant::now();
        let deadline = opened + window;
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match jobs.recv_timeout(deadline - now) {
                Ok(job) => batch.push(job),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Window occupancy: time spent collecting after the first job.
        // Near the configured window means batches close on time, well
        // under it means the size cap fires first.
        if shared.batch_window_ns.is_enabled() {
            shared
                .batch_window_ns
                .record(opened.elapsed().as_nanos() as u64);
        }
        serve_batch(&shared, batch);
    }
}

/// Answers one batch against one snapshot and feeds the result cache.
fn serve_batch(shared: &ServerShared, batch: Vec<Job>) {
    // Dedup identical requests: one engine computation per distinct
    // request, every duplicate answered from it (a thundering herd on
    // a hot query costs one search).
    let mut unique: Vec<SearchRequest> = Vec::new();
    let mut slots: Vec<usize> = Vec::with_capacity(batch.len());
    for job in &batch {
        match unique.iter().position(|r| *r == job.request) {
            Some(at) => slots.push(at),
            None => {
                slots.push(unique.len());
                unique.push(job.request.clone());
            }
        }
    }
    let snapshot = shared.handle.snapshot();
    let results = snapshot.engine.search_many(&unique);
    shared.batches.inc();
    shared.batched_requests.add(batch.len() as u64);
    shared.batch_size.record(batch.len() as u64);
    if shared.cache.enabled() {
        for (request, hits) in unique.iter().zip(&results) {
            let groups = snapshot.engine.keyword_groups(&request.keywords);
            shared
                .cache
                .insert(request, hits.clone(), groups, snapshot.epoch);
        }
    }
    for (job, slot) in batch.into_iter().zip(slots) {
        // A dropped caller (disconnected reply) is not an error.
        let _ = job.reply.send(results[slot].clone());
    }
}
