//! The epoch-style snapshot handle: readers grab an `Arc` to an
//! immutable engine snapshot, writers publish a successor atomically.
//!
//! The handle is a double-buffer protocol over two [`ShardedEngine`]s
//! kept in lockstep (see [`crate::DashServer`]): the *live* side is
//! behind this handle, the *shadow* side is exclusively owned by the
//! writer. A publication applies the delta to the shadow, swaps it in
//! as the new live snapshot (one pointer store under a write lock held
//! for nanoseconds), then waits for the retired side's readers to
//! drain — the epoch's grace period — and catches it up with the same
//! delta so it can serve as the next shadow. Searches therefore never
//! wait on index maintenance and can never observe a half-applied
//! delta: every snapshot they can reach is a fully applied state.

use std::sync::Arc;

use dash_core::ShardedEngine;
use parking_lot::RwLock;

/// One immutable, fully consistent serving state: a sharded engine
/// plus the epoch (publication count) it corresponds to.
#[derive(Debug)]
pub struct EngineSnapshot {
    /// The engine answering this epoch's searches. Shared `&self`
    /// access only — mutation happens on the writer's shadow copy.
    pub engine: ShardedEngine,
    /// How many deltas have been published up to (and including) this
    /// state. Epoch 0 is the freshly built engine.
    pub epoch: u64,
}

/// The reader-facing handle: hands out `Arc` snapshots and lets the
/// writer swap in a successor atomically.
#[derive(Debug)]
pub(crate) struct SnapshotHandle {
    live: RwLock<Arc<EngineSnapshot>>,
}

impl SnapshotHandle {
    /// Wraps a built engine at the given starting epoch. Epoch 0 is a
    /// freshly built engine; a replica mirroring a primary (or a
    /// promoted ex-replica) opens at the primary epoch its state
    /// corresponds to, so epoch numbering stays cluster-wide.
    pub(crate) fn new(engine: ShardedEngine, epoch: u64) -> Self {
        SnapshotHandle {
            live: RwLock::new(Arc::new(EngineSnapshot { engine, epoch })),
        }
    }

    /// The current snapshot. The read lock is held only for the `Arc`
    /// clone; the returned snapshot stays valid (and immutable) for as
    /// long as the caller keeps it, regardless of later publications.
    pub(crate) fn snapshot(&self) -> Arc<EngineSnapshot> {
        Arc::clone(&self.live.read())
    }

    /// Atomically replaces the live snapshot, returning the retired
    /// one. Readers either see the old state or the new one — never a
    /// mixture.
    pub(crate) fn swap(&self, next: Arc<EngineSnapshot>) -> Arc<EngineSnapshot> {
        std::mem::replace(&mut *self.live.write(), next)
    }
}

/// Waits (bounded) for every reader of `snapshot` to drop its `Arc`,
/// then returns the snapshot by value — the grace-period wait of the
/// publish protocol. The serving path holds snapshots only for the
/// duration of one micro-batched search, so the wait normally ends
/// within a few yields; but [`SnapshotHandle::snapshot`] is public and
/// its contract lets a caller keep a snapshot indefinitely, so after
/// `attempts` yields the wait gives up and returns `None` (the caller
/// falls back to forking the new live engine instead of reclaiming the
/// retired one — see `DashServer::publish`). Only the *writer* ever
/// waits here; readers are never blocked.
pub(crate) fn try_drain(
    mut snapshot: Arc<EngineSnapshot>,
    attempts: usize,
) -> Option<EngineSnapshot> {
    for _ in 0..attempts {
        match Arc::try_unwrap(snapshot) {
            Ok(inner) => return Some(inner),
            Err(still_shared) => {
                snapshot = still_shared;
                std::thread::yield_now();
            }
        }
    }
    None
}
