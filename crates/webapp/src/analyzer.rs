//! Web-application analysis (Section III of the paper).
//!
//! The paper recovers a web application's logic with dataflow analysis and
//! symbolic execution: request fields flow through `getParameter` into
//! variables that are concatenated into an SQL string. The analyzer here
//! does the equivalent on the servlet mini-language:
//!
//! 1. every `getParameter`-bound variable becomes a symbolic value,
//! 2. the `Query` concatenation is re-assembled with `$variable`
//!    placeholders in place of symbolic values (dropping the quote
//!    characters the servlet wrapped them in),
//! 3. the resulting parameterized SQL is parsed by [`dash_sql`],
//! 4. the query-string **field ↔ parameter map** (`c ↔ $cuisine`, …) is
//!    emitted — this is exactly the information *reverse query-string
//!    parsing* needs to turn parameter values back into URLs.

use dash_sql::{parse_select, SelectStatement};

use crate::error::WebAppError;
use crate::servlet::{ConcatPart, ServletProgram};

/// The result of analyzing a servlet: its parameterized query (as SQL text
/// and parsed form) and the field ↔ parameter correspondence.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedApplication {
    /// Servlet name.
    pub name: String,
    /// Servlet base URI.
    pub base_uri: String,
    /// GET or POST (how query strings reach the application).
    pub method: crate::servlet::HttpMethod,
    /// The recovered parameterized SQL text (placeholders are `$variable`).
    pub sql: String,
    /// The parsed statement.
    pub statement: SelectStatement,
    /// `(query-string field, parameter name)` pairs in `getParameter`
    /// order — e.g. `[("c","cuisine"), ("l","min"), ("u","max")]`.
    pub field_params: Vec<(String, String)>,
}

/// Analyzes a parsed servlet into its parameterized query.
///
/// # Errors
///
/// * [`WebAppError::Analysis`] — a concatenated variable was never bound
///   by `getParameter`, or a bound variable never flows into the query
///   (dead field), or the servlet discards its result.
/// * [`WebAppError::Sql`] — the recovered SQL is outside the PSJ dialect.
pub fn analyze_servlet(program: &ServletProgram) -> Result<AnalyzedApplication, WebAppError> {
    if !program.outputs_result {
        return Err(WebAppError::Analysis {
            detail: "servlet never outputs its query result; it generates no db-pages".to_string(),
        });
    }

    // Which variables are symbolic (request-derived)?
    let bound: Vec<&str> = program
        .bindings
        .iter()
        .map(|b| b.variable.as_str())
        .collect();

    // Re-assemble the SQL with $placeholders, stripping the quotes that
    // surround string-typed splices (`… = "` + cuisine + `"` becomes
    // `… = $cuisine`).
    let mut sql = String::new();
    let mut used: Vec<&str> = Vec::new();
    let parts = &program.query_concat;
    for (i, part) in parts.iter().enumerate() {
        match part {
            ConcatPart::Literal(lit) => {
                let mut text = lit.as_str();
                // Drop a trailing quote if a variable follows.
                if matches!(parts.get(i + 1), Some(ConcatPart::Variable(_))) {
                    if let Some(stripped) =
                        text.strip_suffix('"').or_else(|| text.strip_suffix('\''))
                    {
                        text = stripped;
                    }
                }
                // Drop a leading quote if a variable precedes.
                if i > 0 && matches!(parts.get(i - 1), Some(ConcatPart::Variable(_))) {
                    if let Some(stripped) =
                        text.strip_prefix('"').or_else(|| text.strip_prefix('\''))
                    {
                        text = stripped;
                    }
                }
                sql.push_str(text);
            }
            ConcatPart::Variable(var) => {
                if !bound.contains(&var.as_str()) {
                    return Err(WebAppError::Analysis {
                        detail: format!(
                            "variable `{var}` flows into the query but is not request-derived"
                        ),
                    });
                }
                used.push(var);
                sql.push('$');
                sql.push_str(var);
            }
        }
    }

    // Dead request fields are an analysis smell: the paper's reverse
    // parsing needs every field to correspond to a query parameter.
    for b in &program.bindings {
        if !used.contains(&b.variable.as_str()) {
            return Err(WebAppError::Analysis {
                detail: format!(
                    "request field `{}` (variable `{}`) never reaches the query",
                    b.field, b.variable
                ),
            });
        }
    }

    let statement = parse_select(&sql)?;
    let field_params = program
        .bindings
        .iter()
        .map(|b| (b.field.clone(), b.variable.clone()))
        .collect();

    Ok(AnalyzedApplication {
        name: program.name.clone(),
        base_uri: program.base_uri.clone(),
        method: program.method,
        sql,
        statement,
        field_params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servlet::parse_servlet;

    const SEARCH: &str = r#"
        servlet Search at "www.example.com/Search" {
            String cuisine = q.getParameter("c");
            String min = q.getParameter("l");
            String max = q.getParameter("u");
            Query = "SELECT name, budget, rate, comment, uname, date "
                  + "FROM (restaurant LEFT JOIN comment) JOIN customer "
                  + "WHERE (cuisine = \"" + cuisine + "\") "
                  + "AND (budget BETWEEN " + min + " AND " + max + ")";
            output(execute(Query));
        }
    "#;

    #[test]
    fn recovers_parameterized_query_from_figure_3() {
        let program = parse_servlet(SEARCH).unwrap();
        let analyzed = analyze_servlet(&program).unwrap();
        assert!(analyzed.sql.contains("cuisine = $cuisine"));
        assert!(analyzed.sql.contains("BETWEEN $min AND $max"));
        assert_eq!(analyzed.statement.params(), vec!["cuisine", "min", "max"]);
        assert_eq!(
            analyzed.field_params,
            vec![
                ("c".to_string(), "cuisine".to_string()),
                ("l".to_string(), "min".to_string()),
                ("u".to_string(), "max".to_string()),
            ]
        );
    }

    #[test]
    fn unbound_variable_rejected() {
        let src = r#"
            servlet S at "e/S" {
                Query = "SELECT * FROM r WHERE a = " + ghost;
                output(execute(Query));
            }
        "#;
        let err = analyze_servlet(&parse_servlet(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn dead_field_rejected() {
        let src = r#"
            servlet S at "e/S" {
                String x = q.getParameter("x");
                String unused = q.getParameter("y");
                Query = "SELECT * FROM r WHERE a = " + x;
                output(execute(Query));
            }
        "#;
        let err = analyze_servlet(&parse_servlet(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("unused"));
    }

    #[test]
    fn non_outputting_servlet_rejected() {
        let src = r#"
            servlet S at "e/S" {
                String x = q.getParameter("x");
                Query = "SELECT * FROM r WHERE a = " + x;
            }
        "#;
        assert!(analyze_servlet(&parse_servlet(src).unwrap()).is_err());
    }

    #[test]
    fn invalid_recovered_sql_rejected() {
        let src = r#"
            servlet S at "e/S" {
                String x = q.getParameter("x");
                Query = "DROP TABLE r; -- " + x;
                output(execute(Query));
            }
        "#;
        assert!(matches!(
            analyze_servlet(&parse_servlet(src).unwrap()),
            Err(WebAppError::Sql(_))
        ));
    }

    #[test]
    fn single_quoted_splice_also_stripped() {
        let src = r#"
            servlet S at "e/S" {
                String c = q.getParameter("c");
                Query = "SELECT rid FROM restaurant WHERE cuisine = '" + c + "'";
                output(execute(Query));
            }
        "#;
        let analyzed = analyze_servlet(&parse_servlet(src).unwrap()).unwrap();
        assert!(analyzed.sql.contains("cuisine = $c"));
    }
}
