//! Query strings: forward parsing (`c=American&l=10&u=15` → field values)
//! and the building blocks of *reverse query-string parsing* (parameter
//! values → query string), which is how Dash suggests URLs (Section III).

use std::fmt;

use dash_relation::{ColumnType, Date, Decimal, Value};

use crate::error::WebAppError;

/// An ordered list of `field=value` pairs, as they appear after `?` in a
/// db-page URL.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryString {
    pairs: Vec<(String, String)>,
}

impl QueryString {
    /// Creates an empty query string.
    pub fn new() -> Self {
        QueryString::default()
    }

    /// Parses `a=1&b=two` (the `?` must already be stripped). `+` decodes
    /// to a space, mirroring [`Value::to_query_value`].
    ///
    /// # Errors
    ///
    /// Returns [`WebAppError::QueryString`] on pairs without `=` or empty
    /// field names.
    pub fn parse(text: &str) -> Result<Self, WebAppError> {
        let mut pairs = Vec::new();
        if text.is_empty() {
            return Ok(QueryString { pairs });
        }
        for piece in text.split('&') {
            let (field, value) = piece
                .split_once('=')
                .ok_or_else(|| WebAppError::QueryString {
                    detail: format!("`{piece}` is not a field=value pair"),
                })?;
            if field.is_empty() {
                return Err(WebAppError::QueryString {
                    detail: "empty field name".to_string(),
                });
            }
            pairs.push((field.to_string(), value.replace('+', " ")));
        }
        Ok(QueryString { pairs })
    }

    /// Appends a pair (builder style).
    pub fn with(mut self, field: impl Into<String>, value: impl Into<String>) -> Self {
        self.pairs.push((field.into(), value.into()));
        self
    }

    /// The raw value of `field`, if present.
    pub fn get(&self, field: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(f, _)| f == field)
            .map(|(_, v)| v.as_str())
    }

    /// The pairs in order.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// Parses the value of `field` as a typed [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`WebAppError::QueryString`] when the field is missing or
    /// its text does not parse as `ty`.
    pub fn typed_value(&self, field: &str, ty: ColumnType) -> Result<Value, WebAppError> {
        let raw = self.get(field).ok_or_else(|| WebAppError::QueryString {
            detail: format!("missing field `{field}`"),
        })?;
        parse_typed(raw, ty).map_err(|detail| WebAppError::QueryString { detail })
    }
}

/// Parses `raw` as a value of type `ty`.
pub(crate) fn parse_typed(raw: &str, ty: ColumnType) -> Result<Value, String> {
    match ty {
        ColumnType::Int => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("`{raw}` is not an integer")),
        ColumnType::Decimal => Decimal::from_str_exact(raw)
            .map(Value::Decimal)
            .map_err(|e| e.to_string()),
        ColumnType::Str => Ok(Value::str(raw)),
        ColumnType::Date => Date::parse_iso(raw)
            .map(Value::Date)
            .map_err(|e| e.to_string()),
    }
}

impl fmt::Display for QueryString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (field, value)) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, "&")?;
            }
            write!(f, "{field}={}", value.replace(' ', "+"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let qs = QueryString::parse("c=American&l=10&u=15").unwrap();
        assert_eq!(qs.get("c"), Some("American"));
        assert_eq!(qs.get("l"), Some("10"));
        assert_eq!(qs.to_string(), "c=American&l=10&u=15");
    }

    #[test]
    fn plus_decodes_to_space() {
        let qs = QueryString::parse("c=New+American").unwrap();
        assert_eq!(qs.get("c"), Some("New American"));
        assert_eq!(qs.to_string(), "c=New+American");
    }

    #[test]
    fn typed_values() {
        let qs = QueryString::parse("a=12&b=12.50&c=hello&d=2011-08-15").unwrap();
        assert_eq!(
            qs.typed_value("a", ColumnType::Int).unwrap(),
            Value::Int(12)
        );
        assert_eq!(
            qs.typed_value("b", ColumnType::Decimal).unwrap(),
            Value::decimal(1250)
        );
        assert_eq!(
            qs.typed_value("c", ColumnType::Str).unwrap(),
            Value::str("hello")
        );
        assert!(matches!(
            qs.typed_value("d", ColumnType::Date).unwrap(),
            Value::Date(_)
        ));
        assert!(qs.typed_value("a", ColumnType::Date).is_err());
        assert!(qs.typed_value("missing", ColumnType::Int).is_err());
    }

    #[test]
    fn malformed_rejected() {
        assert!(QueryString::parse("noequals").is_err());
        assert!(QueryString::parse("=x").is_err());
        assert!(QueryString::parse("").unwrap().pairs().is_empty());
    }

    #[test]
    fn builder() {
        let qs = QueryString::new().with("c", "Thai").with("l", "10");
        assert_eq!(qs.to_string(), "c=Thai&l=10");
    }

    #[test]
    fn empty_value_allowed() {
        let qs = QueryString::parse("c=").unwrap();
        assert_eq!(qs.get("c"), Some(""));
    }
}
