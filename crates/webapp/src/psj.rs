//! Resolved parameterized PSJ queries (Definition 1 of the paper) and
//! their evaluation.
//!
//! [`PsjQuery`] is the output of web-application analysis: the join order
//! over operand relations, the resolved projection list, and the selection
//! attributes with their parameter bindings. Everything downstream —
//! db-page generation, database crawling, fragment identification, URL
//! reconstruction — is driven by this one structure.

use std::collections::BTreeMap;

use dash_relation::{
    join, select, ColumnType, CompareOp, Database, JoinKind, JoinSpec, Predicate, Table, Value,
};
use dash_sql::{ColumnRef, Condition, JoinKindAst, Scalar, SelectList, SelectStatement, TableExpr};

use crate::error::WebAppError;

/// Concrete parameter values for one application-query invocation, keyed
/// by parameter name.
pub type ParamValues = BTreeMap<String, Value>;

/// A column resolved to its owning operand relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResolvedColumn {
    /// Operand relation name.
    pub relation: String,
    /// Column name within that relation.
    pub column: String,
    /// The column's name inside the accumulated join result (differs from
    /// `column` when a later relation's column collided with an earlier
    /// one and was prefixed).
    pub joined_name: String,
    /// Declared type.
    pub column_type: ColumnType,
}

/// One resolved join step: the right relation is joined onto the
/// accumulation of everything to its left.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedJoin {
    /// Column name in the accumulated left side.
    pub left_joined_name: String,
    /// The operand relation that owns the left join column.
    pub left_relation: String,
    /// The left join column's name within its owning relation.
    pub left_column: String,
    /// The relation being joined in.
    pub right_relation: String,
    /// Join column in the right relation.
    pub right_column: String,
    /// Inner or left-outer.
    pub kind: JoinKind,
}

/// How a selection attribute is bound to query parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectionBinding {
    /// `attr = $param` — an equality parameter (e.g. `cuisine = $c`).
    EqParam(String),
    /// `attr = literal` — a constant baked into the application.
    EqConst(Value),
    /// `attr BETWEEN $low AND $high` — a range parameter pair
    /// (e.g. `budget BETWEEN $l AND $u`).
    RangeParams {
        /// Lower-bound parameter name.
        low: String,
        /// Upper-bound parameter name.
        high: String,
    },
}

impl SelectionBinding {
    /// Parameter names bound by this selection, in (low, high) order.
    pub fn params(&self) -> Vec<&str> {
        match self {
            SelectionBinding::EqParam(p) => vec![p],
            SelectionBinding::EqConst(_) => vec![],
            SelectionBinding::RangeParams { low, high } => vec![low, high],
        }
    }

    /// Whether this is a range binding.
    pub fn is_range(&self) -> bool {
        matches!(self, SelectionBinding::RangeParams { .. })
    }
}

/// One selection attribute `c_i` with its binding.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionAttr {
    /// The resolved attribute.
    pub column: ResolvedColumn,
    /// Its parameter binding.
    pub binding: SelectionBinding,
}

/// A fully resolved parameterized PSJ query.
#[derive(Debug, Clone, PartialEq)]
pub struct PsjQuery {
    /// Operand relations in join order (`R1 ⋈ R2 ⋈ … ⋈ Rn`).
    pub relations: Vec<String>,
    /// Join steps (`relations.len() - 1` of them).
    pub joins: Vec<ResolvedJoin>,
    /// Projected attributes `a_1 … a_l` (resolved).
    pub projection: Vec<ResolvedColumn>,
    /// Selection attributes `c_1 … c_m` with parameter bindings, in
    /// WHERE-clause order — this order defines fragment identifiers.
    pub selections: Vec<SelectionAttr>,
}

impl PsjQuery {
    /// Resolves a parsed [`SelectStatement`] against database metadata:
    /// binds bare column names to relations, resolves implicit join
    /// conditions through declared foreign keys, and classifies selection
    /// bindings.
    ///
    /// # Errors
    ///
    /// * [`WebAppError::Relation`] — unknown relation/column.
    /// * [`WebAppError::Analysis`] — ambiguous bare column, no foreign key
    ///   linking two joined relations, an unsupported condition shape
    ///   (e.g. `>=` without a matching `<=` on the same attribute), or a
    ///   selection attribute that is also projected ambiguously.
    pub fn resolve(stmt: &SelectStatement, db: &Database) -> Result<Self, WebAppError> {
        let relations: Vec<String> = stmt
            .from
            .relations()
            .into_iter()
            .map(String::from)
            .collect();
        if relations.is_empty() {
            return Err(analysis("query has no operand relations"));
        }
        // Map (relation -> schema) for all operands; validate existence.
        for r in &relations {
            db.table(r)?;
        }

        // Build the joined-name map by simulating schema accumulation.
        let mut joined_names: BTreeMap<(String, String), String> = BTreeMap::new();
        let mut seen_names: BTreeMap<String, usize> = BTreeMap::new();
        for (i, rel) in relations.iter().enumerate() {
            let schema = db.table(rel)?.schema().clone();
            for col in schema.columns() {
                let name = if i > 0 && seen_names.contains_key(col.name()) {
                    format!("{rel}.{}", col.name())
                } else {
                    col.name().to_string()
                };
                seen_names.entry(name.clone()).or_insert(i);
                joined_names.insert((rel.clone(), col.name().to_string()), name);
            }
        }

        let resolve_col = |cref: &ColumnRef| -> Result<ResolvedColumn, WebAppError> {
            let (relation, column) = match &cref.relation {
                Some(rel) => {
                    if !relations.iter().any(|r| r == rel) {
                        return Err(analysis(&format!(
                            "relation `{rel}` is not an operand of the query"
                        )));
                    }
                    (rel.clone(), cref.column.clone())
                }
                None => {
                    let mut owners = relations
                        .iter()
                        .filter(|r| {
                            db.table(r)
                                .map(|t| t.schema().contains(&cref.column))
                                .unwrap_or(false)
                        })
                        .collect::<Vec<_>>();
                    match (owners.len(), owners.pop()) {
                        (1, Some(r)) => (r.clone(), cref.column.clone()),
                        (0, _) => {
                            return Err(WebAppError::Relation(
                                dash_relation::RelationError::UnknownColumn {
                                    column: cref.column.clone(),
                                    relation: "any operand".to_string(),
                                },
                            ))
                        }
                        _ => {
                            return Err(analysis(&format!(
                                "bare column `{}` is ambiguous across operands",
                                cref.column
                            )))
                        }
                    }
                }
            };
            let schema = db.table(&relation)?.table_schema();
            let idx = schema.index_of(&column)?;
            let joined_name = joined_names
                .get(&(relation.clone(), column.clone()))
                .cloned()
                .expect("all operand columns mapped");
            Ok(ResolvedColumn {
                column_type: schema.columns()[idx].column_type(),
                relation,
                column,
                joined_name,
            })
        };

        // Resolve joins left-to-right.
        let joins = resolve_joins(&stmt.from, db, &relations, &joined_names)?;

        // Projection.
        let projection: Vec<ResolvedColumn> = match &stmt.select {
            SelectList::Star => {
                let mut cols = Vec::new();
                for rel in &relations {
                    for c in db.table(rel)?.schema().columns() {
                        cols.push(ResolvedColumn {
                            relation: rel.clone(),
                            column: c.name().to_string(),
                            joined_name: joined_names[&(rel.clone(), c.name().to_string())].clone(),
                            column_type: c.column_type(),
                        });
                    }
                }
                cols
            }
            SelectList::Columns(cols) => cols.iter().map(resolve_col).collect::<Result<_, _>>()?,
        };

        // Selections with bindings. `>=`/`<=` pairs on the same attribute
        // are fused into a range binding.
        let mut selections: Vec<SelectionAttr> = Vec::new();
        let mut pending_half_ranges: Vec<(ResolvedColumn, CompareOp, Scalar)> = Vec::new();
        for cond in &stmt.where_clause {
            match cond {
                Condition::Between { column, low, high } => {
                    let col = resolve_col(column)?;
                    let binding =
                        match (low, high) {
                            (Scalar::Param(l), Scalar::Param(h)) => SelectionBinding::RangeParams {
                                low: l.clone(),
                                high: h.clone(),
                            },
                            _ => return Err(analysis(
                                "BETWEEN bounds must both be parameters in an application query",
                            )),
                        };
                    selections.push(SelectionAttr {
                        column: col,
                        binding,
                    });
                }
                Condition::Compare { column, op, value } => {
                    let col = resolve_col(column)?;
                    match (op, value) {
                        (CompareOp::Eq, Scalar::Param(p)) => selections.push(SelectionAttr {
                            column: col,
                            binding: SelectionBinding::EqParam(p.clone()),
                        }),
                        (CompareOp::Eq, Scalar::Literal(v)) => selections.push(SelectionAttr {
                            column: col,
                            binding: SelectionBinding::EqConst(v.clone()),
                        }),
                        (CompareOp::Ge | CompareOp::Le, Scalar::Param(p)) => {
                            // Try to fuse with a pending opposite half.
                            let opposite = match op {
                                CompareOp::Ge => CompareOp::Le,
                                _ => CompareOp::Ge,
                            };
                            if let Some(pos) = pending_half_ranges
                                .iter()
                                .position(|(c, o, _)| *c == col && *o == opposite)
                            {
                                let (c, o, s) = pending_half_ranges.remove(pos);
                                let other = match s {
                                    Scalar::Param(name) => name,
                                    Scalar::Literal(_) => unreachable!("only params pended"),
                                };
                                let (low, high) = if o == CompareOp::Ge {
                                    (other, p.clone())
                                } else {
                                    (p.clone(), other)
                                };
                                selections.push(SelectionAttr {
                                    column: c,
                                    binding: SelectionBinding::RangeParams { low, high },
                                });
                            } else {
                                pending_half_ranges.push((col, *op, value.clone()));
                            }
                        }
                        _ => return Err(analysis(&format!("unsupported condition shape: {cond}"))),
                    }
                }
            }
        }
        if let Some((col, op, _)) = pending_half_ranges.first() {
            return Err(analysis(&format!(
                "half-open range `{} {op} …` has no matching opposite bound",
                col.column
            )));
        }
        if selections.is_empty() {
            return Err(analysis(
                "application query has no parameterized selection attributes",
            ));
        }

        Ok(PsjQuery {
            relations,
            joins,
            projection,
            selections,
        })
    }

    /// All parameter names, in selection order (range bindings contribute
    /// low then high).
    pub fn param_names(&self) -> Vec<&str> {
        self.selections
            .iter()
            .flat_map(|s| s.binding.params())
            .collect()
    }

    /// The joined names of the projected attributes.
    pub fn projection_joined_names(&self) -> Vec<&str> {
        self.projection
            .iter()
            .map(|c| c.joined_name.as_str())
            .collect()
    }

    /// The joined names of the selection attributes (fragment-identifier
    /// order).
    pub fn selection_joined_names(&self) -> Vec<&str> {
        self.selections
            .iter()
            .map(|s| s.column.joined_name.as_str())
            .collect()
    }

    /// Index of the (single) range-bound selection attribute, if any.
    pub fn range_selection_index(&self) -> Option<usize> {
        self.selections.iter().position(|s| s.binding.is_range())
    }

    /// Materializes the full join `R1 ⋈ … ⋈ Rn` (no selection, no
    /// projection) — the substrate both db-page generation and database
    /// crawling select from.
    ///
    /// # Errors
    ///
    /// Propagates relational errors (missing relations/columns).
    pub fn join_all(&self, db: &Database) -> Result<Table, WebAppError> {
        let mut acc = db.table(&self.relations[0])?.clone();
        for step in &self.joins {
            let right = db.table(&step.right_relation)?;
            acc = join(
                &acc,
                right,
                &JoinSpec {
                    left_column: step.left_joined_name.clone(),
                    right_column: step.right_column.clone(),
                    kind: step.kind,
                },
            )?;
        }
        Ok(acc)
    }

    /// The selection predicate for concrete `params`.
    ///
    /// # Errors
    ///
    /// Returns [`WebAppError::QueryString`] when a parameter is missing.
    pub fn predicate(&self, params: &ParamValues) -> Result<Predicate, WebAppError> {
        let mut parts = Vec::with_capacity(self.selections.len());
        let need = |name: &str| -> Result<Value, WebAppError> {
            params
                .get(name)
                .cloned()
                .ok_or_else(|| WebAppError::QueryString {
                    detail: format!("missing value for parameter `{name}`"),
                })
        };
        for sel in &self.selections {
            let col = sel.column.joined_name.clone();
            let p = match &sel.binding {
                SelectionBinding::EqParam(name) => Predicate::eq(col, need(name)?),
                SelectionBinding::EqConst(v) => Predicate::eq(col, v.clone()),
                SelectionBinding::RangeParams { low, high } => {
                    Predicate::between(col, need(low)?, need(high)?)
                }
            };
            parts.push(p);
        }
        Ok(Predicate::And(parts))
    }

    /// Evaluates the query for concrete `params`: join, select, project.
    /// This is step (b) of the application execution model and the ground
    /// truth for db-page content.
    ///
    /// # Errors
    ///
    /// Propagates relational errors and missing parameters.
    pub fn evaluate(&self, db: &Database, params: &ParamValues) -> Result<Table, WebAppError> {
        let joined = self.join_all(db)?;
        let filtered = select(&joined, &self.predicate(params)?)?;
        let cols = self.projection_joined_names();
        Ok(dash_relation::project(&filtered, &cols)?)
    }
}

fn resolve_joins(
    from: &TableExpr,
    db: &Database,
    relations: &[String],
    joined_names: &BTreeMap<(String, String), String>,
) -> Result<Vec<ResolvedJoin>, WebAppError> {
    // Walk the join tree in left-to-right order, flattening to a linear
    // chain (valid because operand order is left-deep in our dialect's
    // usage; bushy trees are linearized by joining each right-subtree
    // relation in sequence).
    let mut steps: Vec<ResolvedJoin> = Vec::new();
    let mut joined_so_far: Vec<String> = Vec::new();
    flatten(from, db, &mut joined_so_far, &mut steps, joined_names)?;
    debug_assert_eq!(joined_so_far.len(), relations.len());

    // Outer-ness propagation. The paper's db-pages keep LEFT-JOIN-padded
    // rows through subsequent joins (Figure 5 lists `Wandy's 12 4.1` with
    // empty comment/uname even though `customer` is inner-joined), so a
    // join whose left link column belongs to an outer-joined relation is
    // itself promoted to left-outer: a NULL key must pad, not drop.
    let mut outer_relations: std::collections::HashSet<String> = std::collections::HashSet::new();
    for step in &mut steps {
        let owner = step.left_relation.clone();
        if step.kind == JoinKind::Inner && outer_relations.contains(&owner) {
            step.kind = JoinKind::LeftOuter;
        }
        if step.kind == JoinKind::LeftOuter {
            outer_relations.insert(step.right_relation.clone());
        }
    }
    Ok(steps)
}

fn flatten(
    expr: &TableExpr,
    db: &Database,
    joined_so_far: &mut Vec<String>,
    steps: &mut Vec<ResolvedJoin>,
    joined_names: &BTreeMap<(String, String), String>,
) -> Result<(), WebAppError> {
    match expr {
        TableExpr::Relation(name) => {
            if joined_so_far.is_empty() {
                joined_so_far.push(name.clone());
                return Ok(());
            }
            // Find an FK or explicit link between `name` and the joined set.
            let (left_rel, left_col, right_col) = find_link(db, joined_so_far, name)?;
            steps.push(ResolvedJoin {
                left_joined_name: joined_names[&(left_rel.clone(), left_col.clone())].clone(),
                left_relation: left_rel,
                left_column: left_col,
                right_relation: name.clone(),
                right_column: right_col,
                kind: JoinKind::Inner,
            });
            joined_so_far.push(name.clone());
            Ok(())
        }
        TableExpr::Join {
            left,
            right,
            kind,
            on,
        } => {
            flatten(left, db, joined_so_far, steps, joined_names)?;
            // The right subtree's first relation links to the left set;
            // handle the common case where `right` is a base relation or a
            // join whose leftmost relation carries the link.
            let first_right = *right.relations().first().expect("non-empty");
            let (left_rel, left_col, right_col) = match on {
                Some((a, b)) => resolve_on(db, joined_so_far, first_right, a, b)?,
                None => find_link(db, joined_so_far, first_right)?,
            };
            steps.push(ResolvedJoin {
                left_joined_name: joined_names[&(left_rel.clone(), left_col.clone())].clone(),
                left_relation: left_rel,
                left_column: left_col,
                right_relation: first_right.to_string(),
                right_column: right_col,
                kind: match kind {
                    JoinKindAst::Inner => JoinKind::Inner,
                    JoinKindAst::LeftOuter => JoinKind::LeftOuter,
                },
            });
            joined_so_far.push(first_right.to_string());
            // Remaining relations of the right subtree chain on via FKs.
            if let TableExpr::Join { .. } = **right {
                flatten_rest(right, db, joined_so_far, steps, joined_names)?;
            }
            Ok(())
        }
    }
}

/// Processes the joins *inside* a right subtree whose leftmost relation is
/// already joined.
fn flatten_rest(
    expr: &TableExpr,
    db: &Database,
    joined_so_far: &mut Vec<String>,
    steps: &mut Vec<ResolvedJoin>,
    joined_names: &BTreeMap<(String, String), String>,
) -> Result<(), WebAppError> {
    if let TableExpr::Join {
        left,
        right,
        kind,
        on,
    } = expr
    {
        if let TableExpr::Join { .. } = **left {
            flatten_rest(left, db, joined_so_far, steps, joined_names)?;
        }
        let first_right = *right.relations().first().expect("non-empty");
        let (left_rel, left_col, right_col) = match on {
            Some((a, b)) => resolve_on(db, joined_so_far, first_right, a, b)?,
            None => find_link(db, joined_so_far, first_right)?,
        };
        steps.push(ResolvedJoin {
            left_joined_name: joined_names[&(left_rel.clone(), left_col.clone())].clone(),
            left_relation: left_rel,
            left_column: left_col,
            right_relation: first_right.to_string(),
            right_column: right_col,
            kind: match kind {
                JoinKindAst::Inner => JoinKind::Inner,
                JoinKindAst::LeftOuter => JoinKind::LeftOuter,
            },
        });
        joined_so_far.push(first_right.to_string());
        if let TableExpr::Join { .. } = **right {
            flatten_rest(right, db, joined_so_far, steps, joined_names)?;
        }
    }
    Ok(())
}

/// Resolves an explicit `ON a = b` to (left relation, left column, right
/// column) with the right side being `right_rel`.
fn resolve_on(
    db: &Database,
    joined_so_far: &[String],
    right_rel: &str,
    a: &ColumnRef,
    b: &ColumnRef,
) -> Result<(String, String, String), WebAppError> {
    let locate = |cref: &ColumnRef| -> Result<(String, String), WebAppError> {
        match &cref.relation {
            Some(rel) => Ok((rel.clone(), cref.column.clone())),
            None => {
                let owner = joined_so_far
                    .iter()
                    .map(String::as_str)
                    .chain(std::iter::once(right_rel))
                    .find(|r| {
                        db.table(r)
                            .map(|t| t.schema().contains(&cref.column))
                            .unwrap_or(false)
                    })
                    .ok_or_else(|| analysis(&format!("cannot locate ON column `{cref}`")))?;
                Ok((owner.to_string(), cref.column.clone()))
            }
        }
    };
    let (ra, ca) = locate(a)?;
    let (rb, cb) = locate(b)?;
    if ra == right_rel {
        Ok((rb, cb, ca))
    } else if rb == right_rel {
        Ok((ra, ca, cb))
    } else {
        Err(analysis(&format!(
            "ON clause `{a} = {b}` does not reference joined relation `{right_rel}`"
        )))
    }
}

/// Finds the foreign key (in either direction) linking `new_rel` to any
/// already-joined relation.
fn find_link(
    db: &Database,
    joined_so_far: &[String],
    new_rel: &str,
) -> Result<(String, String, String), WebAppError> {
    for fk in db.foreign_keys() {
        if fk.child == new_rel && joined_so_far.contains(&fk.parent) {
            return Ok((
                fk.parent.clone(),
                fk.parent_column.clone(),
                fk.child_column.clone(),
            ));
        }
        if fk.parent == new_rel && joined_so_far.contains(&fk.child) {
            return Ok((
                fk.child.clone(),
                fk.child_column.clone(),
                fk.parent_column.clone(),
            ));
        }
    }
    Err(analysis(&format!(
        "no foreign key links `{new_rel}` to {{{}}}; declare one or use ON",
        joined_so_far.join(", ")
    )))
}

fn analysis(detail: &str) -> WebAppError {
    WebAppError::Analysis {
        detail: detail.to_string(),
    }
}

// Small extension trait so `resolve_col` above can get a schema without
// borrowing `db` mutably.
trait TableSchemaExt {
    fn table_schema(&self) -> &dash_relation::Schema;
}

impl TableSchemaExt for Table {
    fn table_schema(&self) -> &dash_relation::Schema {
        self.schema()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fooddb;
    use dash_sql::parse_select;

    fn resolved() -> PsjQuery {
        let db = fooddb::database();
        let stmt = parse_select(
            "SELECT name, budget, rate, comment, uname, date \
             FROM (restaurant LEFT JOIN comment) JOIN customer \
             WHERE cuisine = $c AND budget BETWEEN $l AND $u",
        )
        .unwrap();
        PsjQuery::resolve(&stmt, &db).unwrap()
    }

    #[test]
    fn resolves_running_example() {
        let q = resolved();
        assert_eq!(q.relations, vec!["restaurant", "comment", "customer"]);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].kind, JoinKind::LeftOuter);
        assert_eq!(q.joins[0].right_relation, "comment");
        assert_eq!(q.joins[0].left_joined_name, "rid");
        // Promoted to left-outer because its link column (`uid`) comes from
        // the outer-joined `comment` relation — see Figure 5 semantics.
        assert_eq!(q.joins[1].kind, JoinKind::LeftOuter);
        assert_eq!(q.joins[1].right_relation, "customer");
        assert_eq!(q.projection.len(), 6);
        assert_eq!(q.selections.len(), 2);
        assert_eq!(q.param_names(), vec!["c", "l", "u"]);
        assert_eq!(q.range_selection_index(), Some(1));
    }

    #[test]
    fn evaluate_matches_paper_page_p1() {
        // P1 = American restaurants with budget in [10, 15] (Figure 1a).
        let db = fooddb::database();
        let q = resolved();
        let mut params = ParamValues::new();
        params.insert("c".into(), Value::str("American"));
        params.insert("l".into(), Value::Int(10));
        params.insert("u".into(), Value::Int(15));
        let result = q.evaluate(&db, &params).unwrap();
        // Burger Queen (1 comment) + Wandy's 4.1 (no comment) + Wandy's 4.2
        // (2 comments) = 4 joined rows.
        assert_eq!(result.len(), 4);
        let text: Vec<String> = result.iter().map(|r| r.render()).collect();
        assert!(text.iter().any(|t| t.contains("Burger experts")));
        assert!(text.iter().any(|t| t.contains("Bad fries")));
        assert!(!text.iter().any(|t| t.contains("McRonald")));
    }

    #[test]
    fn evaluate_p2_superset_of_p1() {
        let db = fooddb::database();
        let q = resolved();
        let mut params = ParamValues::new();
        params.insert("c".into(), Value::str("American"));
        params.insert("l".into(), Value::Int(10));
        params.insert("u".into(), Value::Int(20));
        let p2 = q.evaluate(&db, &params).unwrap();
        assert_eq!(p2.len(), 5); // P1's rows + McRonald's
        let text: Vec<String> = p2.iter().map(|r| r.render()).collect();
        assert!(text.iter().any(|t| t.contains("Regret taking it")));
    }

    #[test]
    fn missing_param_errors() {
        let db = fooddb::database();
        let q = resolved();
        let err = q.evaluate(&db, &ParamValues::new()).unwrap_err();
        assert!(matches!(err, WebAppError::QueryString { .. }));
    }

    #[test]
    fn ge_le_pair_fuses_into_range() {
        let db = fooddb::database();
        let stmt = parse_select(
            "SELECT name FROM restaurant WHERE cuisine = $c AND budget >= $l AND budget <= $u",
        )
        .unwrap();
        let q = PsjQuery::resolve(&stmt, &db).unwrap();
        assert_eq!(q.selections.len(), 2);
        assert!(matches!(
            &q.selections[1].binding,
            SelectionBinding::RangeParams { low, high } if low == "l" && high == "u"
        ));
    }

    #[test]
    fn half_open_range_rejected() {
        let db = fooddb::database();
        let stmt = parse_select("SELECT name FROM restaurant WHERE budget >= $l").unwrap();
        assert!(PsjQuery::resolve(&stmt, &db).is_err());
    }

    #[test]
    fn no_fk_link_rejected() {
        let db = fooddb::database();
        // restaurant and customer have no direct FK.
        let stmt =
            parse_select("SELECT * FROM restaurant JOIN customer WHERE cuisine = $c").unwrap();
        let err = PsjQuery::resolve(&stmt, &db).unwrap_err();
        assert!(err.to_string().contains("no foreign key"));
    }

    #[test]
    fn explicit_on_overrides_fk() {
        let db = fooddb::database();
        let stmt = parse_select(
            "SELECT * FROM comment JOIN customer ON comment.uid = customer.uid \
             WHERE comment.rid = $r",
        )
        .unwrap();
        let q = PsjQuery::resolve(&stmt, &db).unwrap();
        assert_eq!(q.joins[0].right_column, "uid");
    }

    #[test]
    fn star_projects_all_operand_columns() {
        let db = fooddb::database();
        let stmt = parse_select("SELECT * FROM restaurant WHERE cuisine = $c").unwrap();
        let q = PsjQuery::resolve(&stmt, &db).unwrap();
        assert_eq!(q.projection.len(), 5); // rid, name, cuisine, budget, rate
    }

    #[test]
    fn eq_const_binding() {
        let db = fooddb::database();
        let stmt = parse_select(
            "SELECT name FROM restaurant WHERE cuisine = \"Thai\" AND budget BETWEEN $l AND $u",
        )
        .unwrap();
        let q = PsjQuery::resolve(&stmt, &db).unwrap();
        assert!(matches!(
            &q.selections[0].binding,
            SelectionBinding::EqConst(Value::Str(s)) if s == "Thai"
        ));
        // Constants contribute no params.
        assert_eq!(q.param_names(), vec!["l", "u"]);
    }

    #[test]
    fn ambiguous_bare_column_rejected() {
        let db = fooddb::database();
        // `rid` exists in both restaurant and comment.
        let stmt =
            parse_select("SELECT name FROM restaurant LEFT JOIN comment WHERE rid = $r").unwrap();
        let err = PsjQuery::resolve(&stmt, &db).unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }
}
