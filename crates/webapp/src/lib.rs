//! # dash-webapp
//!
//! The web-application model of the Dash paper (Section III): a web
//! application `A` is a wrapper around one *parameterized PSJ query* over a
//! database `D`, executed in three steps — (a) query-string parsing, (b)
//! application-query evaluation, (c) result presentation.
//!
//! This crate provides every piece Dash needs to reverse-engineer that
//! pipeline:
//!
//! * [`servlet`] — a tiny servlet language (modeled on the paper's Figure 3
//!   Java servlet) and its parser;
//! * [`analyzer`] — the dataflow analysis that tracks `getParameter`
//!   values into SQL string concatenation and recovers the parameterized
//!   query plus the query-string field ↔ parameter map;
//! * [`psj`] — the resolved [`PsjQuery`] form (join order, projection,
//!   selection attributes with parameter bindings) and its evaluator;
//! * [`query_string`] — forward parsing of `c=American&l=10&u=15` and the
//!   *reverse query-string parsing* that turns parameter values back into
//!   URLs (how Dash suggests results);
//! * [`page`] — db-page construction and HTML rendering;
//! * [`app`] — [`WebApplication`], tying it all together, able to actually
//!   *execute* query strings against a database (the ground truth Dash's
//!   fragment-assembled answers are validated against);
//! * [`fooddb`] — the paper's running example: the `fooddb` database
//!   (Figure 2) and the `Search` servlet (Figure 3).
//!
//! ```
//! use dash_webapp::fooddb;
//! use dash_webapp::QueryString;
//!
//! # fn main() -> Result<(), dash_webapp::WebAppError> {
//! let db = fooddb::database();
//! let app = fooddb::search_application()?;
//! // Example 1 of the paper: P1 = Search?c=American&l=10&u=15
//! let page = app.execute(&db, &QueryString::parse("c=American&l=10&u=15")?)?;
//! assert!(page.render_text().contains("Burger experts"));
//! # Ok(())
//! # }
//! ```

pub mod analyzer;
pub mod app;
pub mod error;
pub mod fooddb;
pub mod page;
pub mod psj;
pub mod query_string;
pub mod servlet;

pub use analyzer::{analyze_servlet, AnalyzedApplication};
pub use app::WebApplication;
pub use error::WebAppError;
pub use page::DbPage;
pub use psj::{
    ParamValues, PsjQuery, ResolvedColumn, ResolvedJoin, SelectionAttr, SelectionBinding,
};
pub use query_string::QueryString;
pub use servlet::{parse_servlet, ConcatPart, HttpMethod, ServletProgram};
