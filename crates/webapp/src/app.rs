//! The [`WebApplication`] — the analyzed, executable model of a target web
//! application `A` (Section III/IV of the paper).

use dash_relation::{ColumnType, Database, Value};

use crate::analyzer::{analyze_servlet, AnalyzedApplication};
use crate::error::WebAppError;
use crate::page::DbPage;
use crate::psj::{ParamValues, PsjQuery, SelectionBinding};
use crate::query_string::{parse_typed, QueryString};
use crate::servlet::parse_servlet;

/// An analyzed web application: the parameterized PSJ query it wraps, the
/// query-string field ↔ parameter map, and the base URI — everything Dash
/// needs to (a) crawl its database, and (b) reconstruct db-page URLs.
#[derive(Debug, Clone, PartialEq)]
pub struct WebApplication {
    /// Application name (the servlet class name).
    pub name: String,
    /// Base URI, e.g. `www.example.com/Search`.
    pub base_uri: String,
    /// GET (query string in the URL) or POST (query string in the body).
    pub method: crate::servlet::HttpMethod,
    /// The resolved parameterized query.
    pub query: PsjQuery,
    /// `(field, parameter)` pairs in query-string order.
    pub field_params: Vec<(String, String)>,
    /// The recovered SQL text (for diagnostics/documentation).
    pub sql: String,
}

impl WebApplication {
    /// Full analysis pipeline: parse the servlet source, run dataflow
    /// analysis, parse the recovered SQL, and resolve it against `db`'s
    /// metadata.
    ///
    /// # Errors
    ///
    /// Any of the stage errors: [`WebAppError::ServletSyntax`],
    /// [`WebAppError::Analysis`], [`WebAppError::Sql`],
    /// [`WebAppError::Relation`].
    pub fn from_servlet_source(source: &str, db: &Database) -> Result<Self, WebAppError> {
        let program = parse_servlet(source)?;
        let analyzed = analyze_servlet(&program)?;
        Self::from_analyzed(analyzed, db)
    }

    /// Builds from an already-analyzed application.
    ///
    /// # Errors
    ///
    /// Returns [`WebAppError::Analysis`] when a query-string field maps to
    /// a parameter the query never uses, plus any resolution error.
    pub fn from_analyzed(
        analyzed: AnalyzedApplication,
        db: &Database,
    ) -> Result<Self, WebAppError> {
        let query = PsjQuery::resolve(&analyzed.statement, db)?;
        let query_params = query.param_names();
        for (field, param) in &analyzed.field_params {
            if !query_params.contains(&param.as_str()) {
                return Err(WebAppError::Analysis {
                    detail: format!(
                        "field `{field}` maps to parameter `{param}` which the query never uses"
                    ),
                });
            }
        }
        Ok(WebApplication {
            name: analyzed.name,
            base_uri: analyzed.base_uri,
            method: analyzed.method,
            query,
            field_params: analyzed.field_params,
            sql: analyzed.sql,
        })
    }

    /// The declared column type of each query-string field (from the
    /// selection attribute its parameter binds).
    ///
    /// # Errors
    ///
    /// Returns [`WebAppError::Analysis`] if a field's parameter cannot be
    /// located (cannot happen for values built by `from_analyzed`).
    pub fn field_types(&self) -> Result<Vec<(String, ColumnType)>, WebAppError> {
        let mut out = Vec::with_capacity(self.field_params.len());
        for (field, param) in &self.field_params {
            let ty = self
                .query
                .selections
                .iter()
                .find(|s| s.binding.params().contains(&param.as_str()))
                .map(|s| s.column.column_type)
                .ok_or_else(|| WebAppError::Analysis {
                    detail: format!("parameter `{param}` not found in selections"),
                })?;
            out.push((field.clone(), ty));
        }
        Ok(out)
    }

    /// Step (a) of the execution model: parses a query string into typed
    /// parameter values.
    ///
    /// # Errors
    ///
    /// Returns [`WebAppError::QueryString`] for missing fields or values
    /// that fail to parse at the selection attribute's type.
    pub fn parse_query_string(&self, qs: &QueryString) -> Result<ParamValues, WebAppError> {
        let mut params = ParamValues::new();
        for (field, ty) in self.field_types()? {
            let param = self
                .field_params
                .iter()
                .find(|(f, _)| *f == field)
                .map(|(_, p)| p.clone())
                .expect("field_types iterates field_params");
            let value = qs.typed_value(&field, ty)?;
            params.insert(param, value);
        }
        Ok(params)
    }

    /// *Reverse query-string parsing* (Section III): turns parameter
    /// values back into the query string the application would have
    /// received.
    ///
    /// # Errors
    ///
    /// Returns [`WebAppError::QueryString`] when a parameter value is
    /// missing.
    pub fn reverse_query_string(&self, params: &ParamValues) -> Result<QueryString, WebAppError> {
        let mut qs = QueryString::new();
        for (field, param) in &self.field_params {
            let value = params.get(param).ok_or_else(|| WebAppError::QueryString {
                detail: format!("missing value for parameter `{param}`"),
            })?;
            qs = qs.with(field.clone(), value.to_query_value());
        }
        Ok(qs)
    }

    /// The URL suggestion for given parameter values. For GET this is
    /// base URI + `?` + reverse-parsed query string; for POST the query
    /// string travels in the request body, so the suggestion spells that
    /// out instead of fabricating a GET-style URL.
    ///
    /// # Errors
    ///
    /// Same as [`WebApplication::reverse_query_string`].
    pub fn url_for(&self, params: &ParamValues) -> Result<String, WebAppError> {
        let qs = self.reverse_query_string(params)?;
        Ok(self.render_suggestion(&qs.to_string()))
    }

    /// Formats a URL suggestion from an already-rendered query string,
    /// honoring the application's HTTP method.
    pub fn render_suggestion(&self, query_string: &str) -> String {
        match self.method {
            crate::servlet::HttpMethod::Get => format!("{}?{query_string}", self.base_uri),
            crate::servlet::HttpMethod::Post => {
                format!("{} [POST {query_string}]", self.base_uri)
            }
        }
    }

    /// Executes the application for a query string — steps (a)+(b)+(c) of
    /// the execution model — returning the generated db-page. This is the
    /// ground truth Dash's fragment-assembled pages are validated against.
    ///
    /// # Errors
    ///
    /// Propagates query-string and relational errors.
    pub fn execute(&self, db: &Database, qs: &QueryString) -> Result<DbPage, WebAppError> {
        let params = self.parse_query_string(qs)?;
        let result = self.query.evaluate(db, &params)?;
        let url = format!("{}?{qs}", self.base_uri);
        Ok(DbPage::from_table(url, &result))
    }

    /// Parses a raw field string into the typed value for `param`.
    ///
    /// # Errors
    ///
    /// Returns [`WebAppError::QueryString`] on unknown parameter or
    /// unparsable text.
    pub fn parse_param(&self, param: &str, raw: &str) -> Result<Value, WebAppError> {
        let ty = self
            .query
            .selections
            .iter()
            .find(|s| s.binding.params().contains(&param))
            .map(|s| s.column.column_type)
            .ok_or_else(|| WebAppError::QueryString {
                detail: format!("unknown parameter `{param}`"),
            })?;
        parse_typed(raw, ty).map_err(|detail| WebAppError::QueryString { detail })
    }

    /// Convenience: the selection attributes whose binding is an equality
    /// parameter or constant.
    pub fn equality_selections(&self) -> Vec<&crate::psj::SelectionAttr> {
        self.query
            .selections
            .iter()
            .filter(|s| !s.binding.is_range())
            .collect()
    }

    /// Convenience: the range selection attribute, if the query has one.
    pub fn range_selection(&self) -> Option<&crate::psj::SelectionAttr> {
        self.query.selections.iter().find(|s| s.binding.is_range())
    }

    /// The query-string fields for the range parameter pair `(low, high)`,
    /// if the query has a range selection — e.g. `("l", "u")` for the
    /// running example.
    pub fn range_fields(&self) -> Option<(String, String)> {
        let range = self.range_selection()?;
        if let SelectionBinding::RangeParams { low, high } = &range.binding {
            let find = |p: &str| {
                self.field_params
                    .iter()
                    .find(|(_, param)| param == p)
                    .map(|(f, _)| f.clone())
            };
            Some((find(low)?, find(high)?))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fooddb;

    #[test]
    fn end_to_end_execution_matches_figure_1() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let qs = QueryString::parse("c=American&l=10&u=15").unwrap();
        let p1 = app.execute(&db, &qs).unwrap();
        assert_eq!(p1.url, "www.example.com/Search?c=American&l=10&u=15");
        let text = p1.render_text();
        assert!(text.contains("Burger Queen"));
        assert!(text.contains("Unique burger"));
        assert!(!text.contains("McRonald"));

        let qs2 = QueryString::parse("c=American&l=10&u=20").unwrap();
        let p2 = app.execute(&db, &qs2).unwrap();
        assert!(p2.render_text().contains("Regret taking it"));
        assert!(p2.rows.len() > p1.rows.len());
    }

    #[test]
    fn reverse_query_string_roundtrip() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let qs = QueryString::parse("c=American&l=10&u=12").unwrap();
        let params = app.parse_query_string(&qs).unwrap();
        assert_eq!(params.get("cuisine"), Some(&Value::str("American")));
        assert_eq!(params.get("min"), Some(&Value::Int(10)));
        let back = app.reverse_query_string(&params).unwrap();
        assert_eq!(back, qs);
        assert_eq!(
            app.url_for(&params).unwrap(),
            "www.example.com/Search?c=American&l=10&u=12"
        );
        let _ = db;
    }

    #[test]
    fn field_types_follow_schema() {
        let app = fooddb::search_application().unwrap();
        let types = app.field_types().unwrap();
        assert_eq!(
            types,
            vec![
                ("c".to_string(), ColumnType::Str),
                ("l".to_string(), ColumnType::Int),
                ("u".to_string(), ColumnType::Int),
            ]
        );
    }

    #[test]
    fn bad_query_string_value_rejected() {
        let db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let qs = QueryString::parse("c=American&l=ten&u=15").unwrap();
        assert!(matches!(
            app.execute(&db, &qs),
            Err(WebAppError::QueryString { .. })
        ));
    }

    #[test]
    fn range_and_equality_helpers() {
        let app = fooddb::search_application().unwrap();
        assert_eq!(app.equality_selections().len(), 1);
        assert!(app.range_selection().is_some());
        assert_eq!(app.range_fields(), Some(("l".to_string(), "u".to_string())));
        assert!(app.parse_param("min", "7").is_ok());
        assert!(app.parse_param("nope", "7").is_err());
    }
}
