//! A servlet mini-language mirroring the paper's Figure 3.
//!
//! The paper analyzes Java servlets whose `doGet` (i) pulls fields out of
//! the request query string with `getParameter`, (ii) assembles an SQL
//! string by concatenation, and (iii) executes it and renders the result.
//! This module defines an equivalent textual artifact and its parser — the
//! input to [`crate::analyzer`].
//!
//! ```text
//! servlet Search at "www.example.com/Search" {
//!     String cuisine = q.getParameter("c");
//!     String min = q.getParameter("l");
//!     String max = q.getParameter("u");
//!     Query = "SELECT ... WHERE (cuisine = \"" + cuisine + "\") AND "
//!           + "(budget BETWEEN " + min + " AND " + max + ")";
//!     output(execute(Query));
//! }
//! ```

use crate::error::WebAppError;

/// One piece of the SQL concatenation expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConcatPart {
    /// A string literal fragment.
    Literal(String),
    /// A reference to a variable bound by `getParameter`.
    Variable(String),
}

/// A variable binding `TYPE name = q.getParameter("field");`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamBinding {
    /// Declared type name (`String`, `int`, ... — informational only; the
    /// analyzer infers real types from the database schema).
    pub declared_type: String,
    /// Variable name.
    pub variable: String,
    /// Query-string field it reads (`"c"`, `"l"`, `"u"`).
    pub field: String,
}

/// How the servlet receives its query string (the paper's footnote 1:
/// query strings arrive in the URL for GET and in the request body for
/// POST; Dash supports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HttpMethod {
    /// Query string appended to the URL (`uri?field=value`).
    #[default]
    Get,
    /// Query string carried in the request body.
    Post,
}

/// A parsed servlet: the structured form of the three execution steps of
/// Section III.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServletProgram {
    /// The servlet class name (`Search`).
    pub name: String,
    /// The URI the servlet is served at.
    pub base_uri: String,
    /// GET (default) or POST.
    pub method: HttpMethod,
    /// Step (a): query-string parsing — `getParameter` bindings in source
    /// order.
    pub bindings: Vec<ParamBinding>,
    /// Step (b): the SQL string concatenation.
    pub query_concat: Vec<ConcatPart>,
    /// Step (c): whether the result is rendered (`output(execute(Query))`).
    pub outputs_result: bool,
}

/// Parses a servlet program.
///
/// # Errors
///
/// Returns [`WebAppError::ServletSyntax`] with a line number on any
/// deviation from the mini-language.
pub fn parse_servlet(source: &str) -> Result<ServletProgram, WebAppError> {
    let mut lines = source
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with("//"));

    // Header: `servlet NAME at "URI" {`
    let (line_no, header) = lines
        .next()
        .ok_or_else(|| syntax(0, "empty servlet source"))?;
    let header = header
        .strip_suffix('{')
        .ok_or_else(|| syntax(line_no, "header must end with `{`"))?
        .trim();
    let rest = header
        .strip_prefix("servlet ")
        .ok_or_else(|| syntax(line_no, "expected `servlet NAME at \"URI\"`"))?;
    let (name, uri_part) = rest
        .split_once(" at ")
        .ok_or_else(|| syntax(line_no, "expected ` at \"URI\"` in header"))?;
    let uri_part = uri_part.trim();
    let (uri_text, method) = match uri_part.rsplit_once(" via ") {
        Some((uri, m)) if m.trim().eq_ignore_ascii_case("POST") => (uri.trim(), HttpMethod::Post),
        Some((uri, m)) if m.trim().eq_ignore_ascii_case("GET") => (uri.trim(), HttpMethod::Get),
        Some((_, m)) => {
            return Err(syntax(line_no, &format!("unknown method `{}`", m.trim())));
        }
        None => (uri_part, HttpMethod::Get),
    };
    let base_uri =
        parse_quoted(uri_text).ok_or_else(|| syntax(line_no, "URI must be double-quoted"))?;

    let mut bindings = Vec::new();
    let mut query_concat: Option<Vec<ConcatPart>> = None;
    let mut outputs_result = false;
    let mut closed = false;

    // Statements may span lines (Query concatenation usually does), so we
    // re-join until each statement's `;` and handle `}` separately.
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (line_no, line) in lines {
        if line == "}" && pending.is_empty() {
            closed = true;
            continue;
        }
        if pending.is_empty() {
            pending_line = line_no;
        }
        if !pending.is_empty() {
            pending.push(' ');
        }
        pending.push_str(line);
        if !statement_complete(&pending) {
            continue;
        }
        let stmt = pending.trim_end_matches(';').trim().to_string();
        pending.clear();
        if let Some(rest) = stmt.strip_prefix("output(") {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| syntax(pending_line, "unbalanced output(...)"))?;
            if inner.trim() != "execute(Query)" {
                return Err(syntax(pending_line, "expected output(execute(Query))"));
            }
            outputs_result = true;
        } else if let Some(rest) = stmt.strip_prefix("Query =") {
            if query_concat.is_some() {
                return Err(syntax(pending_line, "Query assigned twice"));
            }
            query_concat = Some(parse_concat(rest.trim(), pending_line)?);
        } else {
            bindings.push(parse_binding(&stmt, pending_line)?);
        }
    }
    if !pending.trim().is_empty() {
        return Err(syntax(pending_line, "unterminated statement (missing `;`)"));
    }
    if !closed {
        return Err(syntax(0, "missing closing `}`"));
    }
    let query_concat = query_concat.ok_or_else(|| syntax(0, "servlet never assigns Query"))?;
    Ok(ServletProgram {
        name: name.trim().to_string(),
        base_uri,
        method,
        bindings,
        query_concat,
        outputs_result,
    })
}

/// A statement is complete when its trailing `;` is outside any string
/// literal.
fn statement_complete(text: &str) -> bool {
    let mut in_string = false;
    let mut escaped = false;
    let mut last_meaningful = ' ';
    for c in text.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            _ => {}
        }
        if !c.is_whitespace() {
            last_meaningful = c;
        }
    }
    !in_string && last_meaningful == ';'
}

fn parse_binding(stmt: &str, line: usize) -> Result<ParamBinding, WebAppError> {
    // `TYPE var = q.getParameter("field")`
    let (lhs, rhs) = stmt
        .split_once('=')
        .ok_or_else(|| syntax(line, "expected a binding `TYPE var = q.getParameter(..)`"))?;
    let mut lhs_parts = lhs.split_whitespace();
    let declared_type = lhs_parts
        .next()
        .ok_or_else(|| syntax(line, "missing declared type"))?
        .to_string();
    let variable = lhs_parts
        .next()
        .ok_or_else(|| syntax(line, "missing variable name"))?
        .to_string();
    if lhs_parts.next().is_some() {
        return Err(syntax(line, "too many tokens before `=`"));
    }
    let rhs = rhs.trim();
    let inner = rhs
        .strip_prefix("q.getParameter(")
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| syntax(line, "right-hand side must be q.getParameter(\"field\")"))?;
    let field = parse_quoted(inner.trim())
        .ok_or_else(|| syntax(line, "getParameter argument must be double-quoted"))?;
    Ok(ParamBinding {
        declared_type,
        variable,
        field,
    })
}

/// Parses `"lit" + var + "lit" + ...` into [`ConcatPart`]s.
fn parse_concat(expr: &str, line: usize) -> Result<Vec<ConcatPart>, WebAppError> {
    let mut parts = Vec::new();
    let bytes: Vec<char> = expr.chars().collect();
    let mut i = 0usize;
    let mut expect_operand = true;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '+' {
            if expect_operand {
                return Err(syntax(line, "unexpected `+`"));
            }
            expect_operand = true;
            i += 1;
            continue;
        }
        if !expect_operand {
            return Err(syntax(line, "expected `+` between concatenation operands"));
        }
        if c == '"' {
            // String literal with \" and \\ escapes.
            let mut lit = String::new();
            i += 1;
            loop {
                if i >= bytes.len() {
                    return Err(syntax(line, "unterminated string literal in Query"));
                }
                match bytes[i] {
                    '\\' if i + 1 < bytes.len() => {
                        lit.push(bytes[i + 1]);
                        i += 2;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    other => {
                        lit.push(other);
                        i += 1;
                    }
                }
            }
            parts.push(ConcatPart::Literal(lit));
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let name: String = bytes[start..i].iter().collect();
            parts.push(ConcatPart::Variable(name));
        } else {
            return Err(syntax(
                line,
                &format!("unexpected character `{c}` in Query"),
            ));
        }
        expect_operand = false;
    }
    if expect_operand {
        return Err(syntax(line, "Query expression ends with `+`"));
    }
    if parts.is_empty() {
        return Err(syntax(line, "empty Query expression"));
    }
    Ok(parts)
}

fn parse_quoted(text: &str) -> Option<String> {
    text.strip_prefix('"')?
        .strip_suffix('"')
        .map(str::to_string)
}

fn syntax(line: usize, detail: &str) -> WebAppError {
    WebAppError::ServletSyntax {
        line,
        detail: detail.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEARCH: &str = r#"
        servlet Search at "www.example.com/Search" {
            String cuisine = q.getParameter("c");
            String min = q.getParameter("l");
            String max = q.getParameter("u");
            Query = "SELECT name, budget FROM restaurant WHERE (cuisine = \""
                  + cuisine + "\") AND (budget BETWEEN " + min + " AND " + max + ")";
            output(execute(Query));
        }
    "#;

    #[test]
    fn parses_search_servlet() {
        let p = parse_servlet(SEARCH).unwrap();
        assert_eq!(p.name, "Search");
        assert_eq!(p.base_uri, "www.example.com/Search");
        assert_eq!(p.bindings.len(), 3);
        assert_eq!(p.bindings[0].variable, "cuisine");
        assert_eq!(p.bindings[0].field, "c");
        assert!(p.outputs_result);
        // Concat: lit, var, lit, var, lit, var, lit
        assert_eq!(p.query_concat.len(), 7);
        assert_eq!(p.query_concat[1], ConcatPart::Variable("cuisine".into()));
        match &p.query_concat[0] {
            ConcatPart::Literal(l) => assert!(l.ends_with("(cuisine = \"")),
            _ => panic!("expected literal"),
        }
    }

    #[test]
    fn multiline_query_supported() {
        // SEARCH already splits the Query across two lines.
        let p = parse_servlet(SEARCH).unwrap();
        let lit_count = p
            .query_concat
            .iter()
            .filter(|c| matches!(c, ConcatPart::Literal(_)))
            .count();
        assert_eq!(lit_count, 4);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = r#"
            servlet S at "example.com/S" {
                // read field
                String x = q.getParameter("x");

                Query = "SELECT * FROM r WHERE a = " + x;
                output(execute(Query));
            }
        "#;
        let p = parse_servlet(src).unwrap();
        assert_eq!(p.bindings.len(), 1);
    }

    #[test]
    fn missing_query_rejected() {
        let src = r#"
            servlet S at "example.com/S" {
                String x = q.getParameter("x");
            }
        "#;
        let err = parse_servlet(src).unwrap_err();
        assert!(err.to_string().contains("Query"));
    }

    #[test]
    fn bad_header_rejected() {
        assert!(parse_servlet("class S {\n}").is_err());
        assert!(parse_servlet("servlet S {\n}").is_err());
        assert!(parse_servlet("servlet S at example.com {\n}").is_err());
    }

    #[test]
    fn bad_binding_rejected() {
        let src = r#"
            servlet S at "e/S" {
                String x = request.get("x");
                Query = "SELECT * FROM r";
                output(execute(Query));
            }
        "#;
        assert!(matches!(
            parse_servlet(src),
            Err(WebAppError::ServletSyntax { .. })
        ));
    }

    #[test]
    fn double_query_rejected() {
        let src = r#"
            servlet S at "e/S" {
                Query = "SELECT * FROM r";
                Query = "SELECT * FROM s";
                output(execute(Query));
            }
        "#;
        assert!(parse_servlet(src).is_err());
    }

    #[test]
    fn concat_edge_cases() {
        assert!(parse_concat("\"a\" +", 1).is_err());
        assert!(parse_concat("+ \"a\"", 1).is_err());
        assert!(parse_concat("\"a\" \"b\"", 1).is_err());
        assert!(parse_concat("\"unterminated", 1).is_err());
        assert!(parse_concat("", 1).is_err());
        let parts = parse_concat("\"a\" + x + \"b\"", 1).unwrap();
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn semicolon_inside_string_does_not_split() {
        let src = r#"
            servlet S at "e/S" {
                Query = "SELECT * FROM r WHERE a = \"x;y\"";
                output(execute(Query));
            }
        "#;
        let p = parse_servlet(src).unwrap();
        match &p.query_concat[0] {
            ConcatPart::Literal(l) => assert!(l.contains("x;y")),
            _ => panic!(),
        }
    }
}
