//! Db-pages: the dynamic pages a web application generates (Example 1).

use std::fmt;

use dash_relation::{Record, Schema, Table};

/// A database-generated dynamic web page: the result of one application-
/// query evaluation, addressable by its URL.
///
/// The paper treats a db-page's *content* as the application-query result
/// (third assumption of Section V); rendering wraps it in an HTML table
/// the way the `output` function of Figure 3 would.
#[derive(Debug, Clone)]
pub struct DbPage {
    /// The full URL, base URI + `?` + query string.
    pub url: String,
    /// Result schema (projected attributes).
    pub schema: Schema,
    /// Result rows.
    pub rows: Vec<Record>,
}

impl DbPage {
    /// Creates a page from an evaluated query result.
    pub fn from_table(url: impl Into<String>, table: &Table) -> Self {
        DbPage {
            url: url.into(),
            schema: table.schema().clone(),
            rows: table.records().to_vec(),
        }
    }

    /// Returns `true` when the page has no rows (a "valueless" page in the
    /// paper's terminology — trial-query crawlers generate many of these;
    /// Dash never does).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the page as plain text, one row per line — the form
    /// keywords are extracted from.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&row.render());
            out.push('\n');
        }
        out
    }

    /// Renders the page as a minimal HTML document with a header row, the
    /// way the `Search` servlet's `output` would.
    pub fn render_html(&self) -> String {
        let mut html = String::new();
        html.push_str("<html><body>\n");
        html.push_str(&format!("<!-- {} -->\n", self.url));
        html.push_str("<table>\n<tr>");
        for col in self.schema.columns() {
            html.push_str(&format!("<th>{}</th>", escape(col.name())));
        }
        html.push_str("</tr>\n");
        for row in &self.rows {
            html.push_str("<tr>");
            for v in row.values() {
                html.push_str(&format!("<td>{}</td>", escape(&v.render())));
            }
            html.push_str("</tr>\n");
        }
        html.push_str("</table>\n</body></html>\n");
        html
    }

    /// The page's keywords: every token of every rendered cell.
    pub fn keywords(&self) -> Vec<String> {
        let mut out = Vec::new();
        for row in &self.rows {
            for v in row.values() {
                let rendered = v.render();
                for t in rendered.split_whitespace() {
                    let trimmed = t.trim_matches(|c: char| !c.is_alphanumeric());
                    if !trimmed.is_empty() {
                        out.push(trimmed.to_lowercase());
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for DbPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.url)?;
        write!(f, "{}", self.render_text())
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_relation::{Column, ColumnType, Value};

    fn page() -> DbPage {
        let schema = Schema::builder("result")
            .column(Column::new("name", ColumnType::Str))
            .column(Column::new("budget", ColumnType::Int))
            .build()
            .unwrap();
        let table = Table::with_records(
            schema,
            vec![
                Record::new(vec![Value::str("Burger Queen"), Value::Int(10)]),
                Record::new(vec![Value::str("Wandy's"), Value::Null]),
            ],
        )
        .unwrap();
        DbPage::from_table("example.com/Search?c=American", &table)
    }

    #[test]
    fn text_rendering() {
        let p = page();
        let text = p.render_text();
        assert!(text.contains("Burger Queen 10"));
        assert!(text.lines().count() == 2);
    }

    #[test]
    fn html_rendering_escapes() {
        let schema = Schema::builder("r")
            .column(Column::new("c", ColumnType::Str))
            .build()
            .unwrap();
        let table =
            Table::with_records(schema, vec![Record::new(vec![Value::str("<b>&")])]).unwrap();
        let p = DbPage::from_table("u", &table);
        let html = p.render_html();
        assert!(html.contains("&lt;b&gt;&amp;"));
        assert!(html.contains("<th>c</th>"));
    }

    #[test]
    fn keywords_lowercased_and_trimmed() {
        let p = page();
        let kws = p.keywords();
        assert!(kws.contains(&"burger".to_string()));
        assert!(kws.contains(&"wandy's".to_string()));
        assert!(kws.contains(&"10".to_string()));
    }

    #[test]
    fn empty_detection() {
        let schema = Schema::builder("r")
            .column(Column::new("c", ColumnType::Str))
            .build()
            .unwrap();
        let p = DbPage::from_table("u", &Table::new(schema));
        assert!(p.is_empty());
        assert!(!page().is_empty());
    }

    #[test]
    fn display_includes_url() {
        assert!(page()
            .to_string()
            .starts_with("example.com/Search?c=American"));
    }
}
