//! Error type for the web-application layer.

use std::fmt;

use dash_relation::RelationError;
use dash_sql::ParseError;

/// Errors from servlet parsing, application analysis, query-string
/// handling and application-query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum WebAppError {
    /// The servlet source deviates from the mini-language.
    ServletSyntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// The dataflow analysis could not recover a parameterized query.
    Analysis {
        /// What went wrong.
        detail: String,
    },
    /// The recovered SQL failed to parse.
    Sql(ParseError),
    /// A relational error during resolution or execution.
    Relation(RelationError),
    /// A malformed query string or one missing required fields.
    QueryString {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for WebAppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WebAppError::ServletSyntax { line, detail } => {
                write!(f, "servlet syntax error at line {line}: {detail}")
            }
            WebAppError::Analysis { detail } => write!(f, "analysis error: {detail}"),
            WebAppError::Sql(e) => write!(f, "recovered sql invalid: {e}"),
            WebAppError::Relation(e) => write!(f, "relational error: {e}"),
            WebAppError::QueryString { detail } => write!(f, "query string error: {detail}"),
        }
    }
}

impl std::error::Error for WebAppError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WebAppError::Sql(e) => Some(e),
            WebAppError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for WebAppError {
    fn from(e: ParseError) -> Self {
        WebAppError::Sql(e)
    }
}

impl From<RelationError> for WebAppError {
    fn from(e: RelationError) -> Self {
        WebAppError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = WebAppError::ServletSyntax {
            line: 3,
            detail: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e: WebAppError = RelationError::UnknownRelation {
            relation: "r".into(),
        }
        .into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<WebAppError>();
    }
}
