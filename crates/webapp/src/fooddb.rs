//! The paper's running example: the `fooddb` database (Figure 2) and the
//! `Search` servlet (Figure 3).
//!
//! Everything here is byte-for-byte the data printed in the paper, so unit
//! tests across the workspace can assert against the paper's own worked
//! examples (fragments of Figure 5, the inverted fragment index of
//! Figure 6, the fragment graph of Figure 9, the search trace of
//! Example 7).

use dash_relation::{Column, ColumnType, Database, ForeignKey, Record, Schema, Table, Value};

use crate::app::WebApplication;
use crate::error::WebAppError;

/// The `Search` servlet source, mirroring Figure 3 of the paper.
pub const SEARCH_SERVLET: &str = r#"
servlet Search at "www.example.com/Search" {
    String cuisine = q.getParameter("c");
    String min = q.getParameter("l");
    String max = q.getParameter("u");
    Query = "SELECT name, budget, rate, comment, uname, date "
          + "FROM (restaurant LEFT JOIN comment) JOIN customer "
          + "WHERE (cuisine = \"" + cuisine + "\") "
          + "AND (budget BETWEEN " + min + " AND " + max + ")";
    output(execute(Query));
}
"#;

/// Builds the `fooddb` database exactly as printed in Figure 2.
pub fn database() -> Database {
    let mut db = Database::new("fooddb");

    let restaurant_schema = Schema::builder("restaurant")
        .column(Column::new("rid", ColumnType::Int))
        .column(Column::new("name", ColumnType::Str))
        .column(Column::new("cuisine", ColumnType::Str))
        .column(Column::new("budget", ColumnType::Int))
        .column(Column::new("rate", ColumnType::Str))
        .primary_key(&["rid"])
        .build()
        .expect("static schema");
    let restaurants = [
        (1, "Burger Queen", "American", 10, "4.3"),
        (2, "McRonald's", "American", 18, "2.2"),
        (3, "Wandy's", "American", 12, "4.1"),
        (4, "Wandy's", "American", 12, "4.2"),
        (5, "Thaifood", "Thai", 10, "4.8"),
        (6, "Bangkok", "Thai", 10, "3.9"),
        (7, "Bond's Cafe", "American", 9, "4.3"),
    ];
    let mut restaurant = Table::new(restaurant_schema);
    for (rid, name, cuisine, budget, rate) in restaurants {
        restaurant
            .insert(Record::new(vec![
                Value::Int(rid),
                Value::str(name),
                Value::str(cuisine),
                Value::Int(budget),
                Value::str(rate),
            ]))
            .expect("static data");
    }

    let comment_schema = Schema::builder("comment")
        .column(Column::new("cid", ColumnType::Int))
        .column(Column::new("rid", ColumnType::Int))
        .column(Column::new("uid", ColumnType::Int))
        .column(Column::new("comment", ColumnType::Str))
        .column(Column::new("date", ColumnType::Str))
        .primary_key(&["cid"])
        .build()
        .expect("static schema");
    let comments = [
        (201, 1, 109, "Burger experts", "06/10"),
        (202, 4, 132, "Unique burger", "05/10"),
        (203, 4, 132, "Bad fries", "06/10"),
        (204, 2, 109, "Regret taking it", "06/10"),
        (205, 6, 180, "Thai burger", "08/11"),
        (206, 7, 171, "Nice coffee", "01/11"),
    ];
    let mut comment = Table::new(comment_schema);
    for (cid, rid, uid, text, date) in comments {
        comment
            .insert(Record::new(vec![
                Value::Int(cid),
                Value::Int(rid),
                Value::Int(uid),
                Value::str(text),
                Value::str(date),
            ]))
            .expect("static data");
    }

    let customer_schema = Schema::builder("customer")
        .column(Column::new("uid", ColumnType::Int))
        .column(Column::new("uname", ColumnType::Str))
        .primary_key(&["uid"])
        .build()
        .expect("static schema");
    let customers = [
        (109, "David"),
        (120, "Ben"),
        (132, "Bill"),
        (171, "James"),
        (180, "Alan"),
    ];
    let mut customer = Table::new(customer_schema);
    for (uid, uname) in customers {
        customer
            .insert(Record::new(vec![Value::Int(uid), Value::str(uname)]))
            .expect("static data");
    }

    db.add_table(restaurant);
    db.add_table(comment);
    db.add_table(customer);
    db.add_foreign_key(ForeignKey::new("comment", "rid", "restaurant", "rid"));
    db.add_foreign_key(ForeignKey::new("comment", "uid", "customer", "uid"));
    db
}

/// Analyzes the `Search` servlet against `fooddb`, yielding the running
/// example's [`WebApplication`].
///
/// # Errors
///
/// Never fails for the bundled source; the `Result` is kept so callers
/// exercise the real pipeline.
pub fn search_application() -> Result<WebApplication, WebAppError> {
    WebApplication::from_servlet_source(SEARCH_SERVLET, &database())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_matches_figure_2() {
        let db = database();
        assert_eq!(db.table("restaurant").unwrap().len(), 7);
        assert_eq!(db.table("comment").unwrap().len(), 6);
        assert_eq!(db.table("customer").unwrap().len(), 5);
        db.check_foreign_keys().unwrap();
    }

    #[test]
    fn analysis_recovers_the_query() {
        let app = search_application().unwrap();
        assert_eq!(app.name, "Search");
        assert_eq!(app.base_uri, "www.example.com/Search");
        assert_eq!(
            app.query.relations,
            vec!["restaurant", "comment", "customer"]
        );
        assert_eq!(app.query.selections.len(), 2);
        assert_eq!(app.field_params.len(), 3);
    }
}
