//! POST-method applications (footnote 1 of the paper): query strings
//! arriving in the request body instead of the URL. Analysis and
//! execution are method-agnostic; only the URL suggestion differs.

use dash_webapp::{fooddb, HttpMethod, QueryString, WebApplication};

const POST_SERVLET: &str = r#"
servlet Search at "www.example.com/Search" via POST {
    String cuisine = q.getParameter("c");
    String min = q.getParameter("l");
    String max = q.getParameter("u");
    Query = "SELECT name, budget, rate, comment, uname, date "
          + "FROM (restaurant LEFT JOIN comment) JOIN customer "
          + "WHERE (cuisine = \"" + cuisine + "\") "
          + "AND (budget BETWEEN " + min + " AND " + max + ")";
    output(execute(Query));
}
"#;

#[test]
fn post_servlet_parses_and_analyzes() {
    let db = fooddb::database();
    let app = WebApplication::from_servlet_source(POST_SERVLET, &db).unwrap();
    assert_eq!(app.method, HttpMethod::Post);
    assert_eq!(app.query.relations.len(), 3);
}

#[test]
fn get_is_the_default() {
    let app = fooddb::search_application().unwrap();
    assert_eq!(app.method, HttpMethod::Get);
}

#[test]
fn explicit_get_accepted_unknown_method_rejected() {
    let db = fooddb::database();
    let get_src = POST_SERVLET.replace("via POST", "via GET");
    let app = WebApplication::from_servlet_source(&get_src, &db).unwrap();
    assert_eq!(app.method, HttpMethod::Get);
    let bad = POST_SERVLET.replace("via POST", "via PUT");
    assert!(WebApplication::from_servlet_source(&bad, &db).is_err());
}

#[test]
fn post_suggestions_spell_out_the_body() {
    let db = fooddb::database();
    let app = WebApplication::from_servlet_source(POST_SERVLET, &db).unwrap();
    let qs = QueryString::parse("c=American&l=10&u=12").unwrap();
    let params = app.parse_query_string(&qs).unwrap();
    let suggestion = app.url_for(&params).unwrap();
    assert_eq!(
        suggestion,
        "www.example.com/Search [POST c=American&l=10&u=12]"
    );
}

#[test]
fn post_execution_matches_get_execution() {
    let db = fooddb::database();
    let post = WebApplication::from_servlet_source(POST_SERVLET, &db).unwrap();
    let get = fooddb::search_application().unwrap();
    let qs = QueryString::parse("c=American&l=10&u=15").unwrap();
    let p = post.execute(&db, &qs).unwrap();
    let g = get.execute(&db, &qs).unwrap();
    assert_eq!(p.rows, g.rows);
}

#[test]
fn dash_engine_searches_post_applications() {
    use dash_core::{DashConfig, DashEngine, SearchRequest};
    let db = fooddb::database();
    let app = WebApplication::from_servlet_source(POST_SERVLET, &db).unwrap();
    let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
    let hits = engine.search(&SearchRequest::new(&["burger"]).k(2).min_size(20));
    assert_eq!(hits.len(), 2);
    assert!(hits.iter().all(|h| h.url.contains("[POST ")));
}
