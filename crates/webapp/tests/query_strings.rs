//! Property-based tests of query-string handling: the forward-parse /
//! reverse-parse loop at the heart of Dash's URL suggestions.

use proptest::prelude::*;

use dash_relation::Value;
use dash_webapp::{fooddb, ParamValues, QueryString};

fn cuisine_strategy() -> impl Strategy<Value = String> {
    // URL-safe cuisine names, possibly with (encoded) spaces.
    "[A-Za-z]{1,12}( [A-Za-z]{1,8})?"
}

proptest! {
    /// reverse(parse(qs)) == qs for every well-formed query string of the
    /// running example's application.
    #[test]
    fn parse_reverse_roundtrip(
        cuisine in cuisine_strategy(),
        lo in -1000i64..1000,
        width in 0i64..100,
    ) {
        let app = fooddb::search_application().unwrap();
        let qs = QueryString::new()
            .with("c", cuisine.replace(' ', "+"))
            .with("l", lo.to_string())
            .with("u", (lo + width).to_string());
        let params = app.parse_query_string(&qs).unwrap();
        let back = app.reverse_query_string(&params).unwrap();
        prop_assert_eq!(back.to_string(), qs.to_string());
    }

    /// reverse-then-parse is the identity on parameter values.
    #[test]
    fn reverse_parse_roundtrip(
        cuisine in cuisine_strategy(),
        lo in -1000i64..1000,
        width in 0i64..100,
    ) {
        let app = fooddb::search_application().unwrap();
        let mut params = ParamValues::new();
        params.insert("cuisine".into(), Value::str(cuisine));
        params.insert("min".into(), Value::Int(lo));
        params.insert("max".into(), Value::Int(lo + width));
        let qs = app.reverse_query_string(&params).unwrap();
        let back = app.parse_query_string(&qs).unwrap();
        prop_assert_eq!(back, params);
    }

    /// The parser never panics on arbitrary text.
    #[test]
    fn query_string_parser_never_panics(text in "\\PC{0,60}") {
        let _ = QueryString::parse(&text);
    }

    /// Type checking rejects non-numeric range fields but accepts any
    /// cuisine text.
    #[test]
    fn range_fields_must_be_numeric(junk in "[a-z]{1,8}") {
        let app = fooddb::search_application().unwrap();
        let qs = QueryString::new()
            .with("c", "American")
            .with("l", junk.clone())
            .with("u", "10");
        prop_assert!(app.parse_query_string(&qs).is_err());
    }
}
