//! Property-based tests of the MapReduce runtime: equivalence with a
//! sequential reference execution, combiner transparency, and cost-model
//! monotonicity.

use std::collections::BTreeMap;

use proptest::prelude::*;

use dash_mapreduce::{run_job, ClusterConfig, JobSpec};

/// Sequential reference word count.
fn reference_counts(docs: &[String]) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for d in docs {
        for w in d.split_whitespace() {
            *counts.entry(w.to_string()).or_insert(0) += 1;
        }
    }
    counts
}

fn doc_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..12, 0..12).prop_map(|ws| {
        ws.iter()
            .map(|w| format!("w{w}"))
            .collect::<Vec<_>>()
            .join(" ")
    })
}

proptest! {
    /// The MR word count equals the sequential reference for any corpus,
    /// any reducer count, and any split size.
    #[test]
    fn wordcount_matches_reference(
        docs in prop::collection::vec(doc_strategy(), 0..40),
        reducers in 1usize..9,
        split_bytes in 16usize..4096,
    ) {
        let cluster = ClusterConfig {
            split_bytes,
            ..ClusterConfig::default()
        };
        let result = run_job(
            &cluster,
            JobSpec::new("wc").reduce_tasks(reducers),
            &docs,
            |d: &String, emit| {
                for w in d.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |w: &String, vs: Vec<u64>, emit| emit((w.clone(), vs.iter().sum::<u64>())),
        );
        let got: BTreeMap<String, u64> = result.output.into_iter().collect();
        prop_assert_eq!(got, reference_counts(&docs));
    }

    /// Installing a sum combiner never changes the output, only the
    /// shuffle volume (which never grows).
    #[test]
    fn combiner_is_transparent(
        docs in prop::collection::vec(doc_strategy(), 0..30),
    ) {
        let cluster = ClusterConfig {
            split_bytes: 64,
            ..ClusterConfig::default()
        };
        let mapper = |d: &String, emit: &mut dyn FnMut(String, u64)| {
            for w in d.split_whitespace() {
                emit(w.to_string(), 1u64);
            }
        };
        let reducer = |w: &String, vs: Vec<u64>, emit: &mut dyn FnMut((String, u64))| {
            emit((w.clone(), vs.iter().sum::<u64>()))
        };
        let plain = run_job(&cluster, JobSpec::new("wc"), &docs, mapper, reducer);
        let combined = run_job(
            &cluster,
            JobSpec::new("wc").combiner(|_w: &String, vs: Vec<u64>| vec![vs.iter().sum()]),
            &docs,
            mapper,
            reducer,
        );
        let a: BTreeMap<String, u64> = plain.output.into_iter().collect();
        let b: BTreeMap<String, u64> = combined.output.into_iter().collect();
        prop_assert_eq!(a, b);
        prop_assert!(
            combined.stats.shuffle.input_bytes <= plain.stats.shuffle.input_bytes
        );
    }

    /// Simulated time is monotone in data volume: more documents never
    /// cost less, and byte_scale extrapolation never reduces cost.
    #[test]
    fn cost_model_monotonicity(
        docs in prop::collection::vec(doc_strategy(), 1..25),
        extra in prop::collection::vec(doc_strategy(), 1..10),
    ) {
        let run = |input: &[String], scale: f64| {
            let cluster = ClusterConfig {
                byte_scale: scale,
                ..ClusterConfig::default()
            };
            run_job(
                &cluster,
                JobSpec::new("wc"),
                input,
                |d: &String, emit| {
                    for w in d.split_whitespace() {
                        emit(w.to_string(), 1u64);
                    }
                },
                |w: &String, vs: Vec<u64>, emit| emit((w.clone(), vs.len() as u64)),
            )
            .stats
            .sim_total_secs()
        };
        let mut bigger = docs.clone();
        bigger.extend(extra.iter().cloned());
        prop_assert!(run(&bigger, 1.0) >= run(&docs, 1.0) - 1e-9);
        prop_assert!(run(&docs, 100.0) >= run(&docs, 1.0) - 1e-9);
    }

    /// Reduce outputs are grouped correctly: every key reaches exactly
    /// one reducer invocation (no split or duplicate groups).
    #[test]
    fn grouping_is_exact(
        pairs in prop::collection::vec((0u8..15, 0u16..100), 0..60),
        reducers in 1usize..6,
    ) {
        let inputs: Vec<(u64, u64)> =
            pairs.iter().map(|&(k, v)| (k as u64, v as u64)).collect();
        let result = run_job(
            &ClusterConfig::default(),
            JobSpec::new("group").reduce_tasks(reducers),
            &inputs,
            |&(k, v): &(u64, u64), emit| emit(k, v),
            |k: &u64, vs: Vec<u64>, emit| emit((*k, vs.len() as u64)),
        );
        // One output per distinct key, with the full multiplicity.
        let mut expected: BTreeMap<u64, u64> = BTreeMap::new();
        for (k, _) in &inputs {
            *expected.entry(*k).or_insert(0) += 1;
        }
        let got: BTreeMap<u64, u64> = result.output.into_iter().collect();
        prop_assert_eq!(got, expected);
    }
}
