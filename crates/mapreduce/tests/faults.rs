//! Failure-injection integration tests: MapReduce's recovery guarantee —
//! identical output under task failures, at higher simulated cost.

use dash_mapreduce::{run_job, run_job_with_faults, ClusterConfig, FaultPlan, JobSpec};

fn docs() -> Vec<String> {
    (0..60)
        .map(|i| format!("alpha beta w{} w{}", i % 7, i % 3))
        .collect()
}

#[allow(clippy::type_complexity)]
fn wordcount(
    cluster: &ClusterConfig,
    plan: &FaultPlan,
) -> Result<(Vec<(String, u64)>, f64, u64), dash_mapreduce::JobAborted> {
    let input = docs();
    let result = run_job_with_faults(
        cluster,
        JobSpec::new("wc").reduce_tasks(4),
        &input,
        |d: &String, emit| {
            for w in d.split_whitespace() {
                emit(w.to_string(), 1u64);
            }
        },
        |w: &String, vs: Vec<u64>, emit| emit((w.clone(), vs.iter().sum::<u64>())),
        plan,
    )?;
    Ok((
        result.output,
        result.stats.sim_total_secs(),
        result.stats.map_task_attempts + result.stats.reduce_task_attempts,
    ))
}

#[test]
fn output_identical_under_failures() {
    let cluster = ClusterConfig {
        split_bytes: 512,
        ..ClusterConfig::default()
    };
    let (clean, clean_secs, clean_attempts) = wordcount(&cluster, &FaultPlan::new()).unwrap();
    let plan = FaultPlan::new()
        .fail_map(0, 0)
        .fail_map(1, 0)
        .fail_map(1, 1)
        .fail_reduce(2, 0);
    let (faulty, faulty_secs, faulty_attempts) = wordcount(&cluster, &plan).unwrap();
    assert_eq!(clean, faulty, "recovery must not change the output");
    assert!(faulty_secs > clean_secs, "retries must cost simulated time");
    assert!(faulty_attempts > clean_attempts);
}

#[test]
fn node_loss_scenario_recovers() {
    let cluster = ClusterConfig {
        split_bytes: 512,
        ..ClusterConfig::default()
    };
    // Every map task loses its first attempt (e.g. a node died mid-wave).
    let plan = FaultPlan::new().fail_first_map_attempts(64, 1);
    let (faulty, _, _) = wordcount(&cluster, &plan).unwrap();
    let (clean, _, _) = wordcount(&cluster, &FaultPlan::new()).unwrap();
    assert_eq!(clean, faulty);
}

#[test]
fn exhausted_attempts_abort() {
    let cluster = ClusterConfig::default();
    let mut plan = FaultPlan::new();
    plan.max_attempts = 3;
    let plan = plan.fail_map(0, 0).fail_map(0, 1).fail_map(0, 2);
    let err = wordcount(&cluster, &plan).unwrap_err();
    assert_eq!(err.phase, "map");
    assert_eq!(err.task, 0);
    assert_eq!(err.attempts, 3);
}

#[test]
fn plain_run_job_is_the_faultless_case() {
    let cluster = ClusterConfig::default();
    let input = docs();
    let plain = run_job(
        &cluster,
        JobSpec::new("wc"),
        &input,
        |d: &String, emit| {
            for w in d.split_whitespace() {
                emit(w.to_string(), 1u64);
            }
        },
        |w: &String, vs: Vec<u64>, emit| emit((w.clone(), vs.iter().sum::<u64>())),
    );
    assert_eq!(plain.stats.map_task_attempts, plain.stats.map_tasks as u64);
    assert_eq!(
        plain.stats.reduce_task_attempts,
        plain.stats.reduce_tasks as u64
    );
}
