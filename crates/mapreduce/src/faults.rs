//! Task-failure injection and recovery.
//!
//! MapReduce's defining property is tolerating worker failures by
//! re-executing tasks. The runtime models that: a [`FaultPlan`] declares
//! which task attempts fail, the scheduler retries them (Hadoop's default
//! is 4 attempts), and the cost model charges every attempt — so a flaky
//! cluster visibly stretches the simulated elapsed time, while the job's
//! *output* stays byte-identical (tested), exactly the guarantee Hadoop
//! gives.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which task attempts fail, by task kind, task index and attempt number.
///
/// ```
/// use dash_mapreduce::FaultPlan;
/// // First attempt of map task 0 and of reduce task 2 fail.
/// let plan = FaultPlan::new().fail_map(0, 0).fail_reduce(2, 0);
/// assert!(plan.map_should_fail(0, 0));
/// assert!(!plan.map_should_fail(0, 1)); // retry succeeds
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    map_failures: HashSet<(usize, u32)>,
    reduce_failures: HashSet<(usize, u32)>,
    /// Maximum attempts per task before the job aborts (Hadoop:
    /// `mapred.map.max.attempts`, default 4).
    pub max_attempts: u32,
}

impl FaultPlan {
    /// An empty plan (no failures), 4 attempts.
    pub fn new() -> Self {
        FaultPlan {
            map_failures: HashSet::new(),
            reduce_failures: HashSet::new(),
            max_attempts: 4,
        }
    }

    /// Declares that attempt `attempt` of map task `task` fails.
    pub fn fail_map(mut self, task: usize, attempt: u32) -> Self {
        self.map_failures.insert((task, attempt));
        self
    }

    /// Declares that attempt `attempt` of reduce task `task` fails.
    pub fn fail_reduce(mut self, task: usize, attempt: u32) -> Self {
        self.reduce_failures.insert((task, attempt));
        self
    }

    /// Declares that the first `n` attempts of every map task fail (a
    /// node-loss scenario).
    pub fn fail_first_map_attempts(mut self, tasks: usize, n: u32) -> Self {
        for t in 0..tasks {
            for a in 0..n {
                self.map_failures.insert((t, a));
            }
        }
        self
    }

    /// Whether the given map attempt fails.
    pub fn map_should_fail(&self, task: usize, attempt: u32) -> bool {
        self.map_failures.contains(&(task, attempt))
    }

    /// Whether the given reduce attempt fails.
    pub fn reduce_should_fail(&self, task: usize, attempt: u32) -> bool {
        self.reduce_failures.contains(&(task, attempt))
    }

    /// True when no failures are scheduled.
    pub fn is_empty(&self) -> bool {
        self.map_failures.is_empty() && self.reduce_failures.is_empty()
    }
}

/// Counts attempts per task across one job execution.
#[derive(Debug, Default)]
pub struct AttemptCounters {
    /// Total map attempts (≥ map tasks).
    pub map_attempts: AtomicU64,
    /// Total reduce attempts (≥ reduce tasks).
    pub reduce_attempts: AtomicU64,
}

impl AttemptCounters {
    /// Records one map attempt.
    pub fn count_map(&self) {
        self.map_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one reduce attempt.
    pub fn count_reduce(&self) {
        self.reduce_attempts.fetch_add(1, Ordering::Relaxed);
    }
}

/// Error returned when a task exhausts its attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobAborted {
    /// `"map"` or `"reduce"`.
    pub phase: &'static str,
    /// The task that kept failing.
    pub task: usize,
    /// Attempts made.
    pub attempts: u32,
}

impl std::fmt::Display for JobAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} task {} failed {} attempts; job aborted",
            self.phase, self.task, self.attempts
        )
    }
}

impl std::error::Error for JobAborted {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_bookkeeping() {
        let plan = FaultPlan::new().fail_map(1, 0).fail_reduce(0, 0);
        assert!(plan.map_should_fail(1, 0));
        assert!(!plan.map_should_fail(1, 1));
        assert!(plan.reduce_should_fail(0, 0));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn node_loss_helper() {
        let plan = FaultPlan::new().fail_first_map_attempts(3, 2);
        for t in 0..3 {
            assert!(plan.map_should_fail(t, 0));
            assert!(plan.map_should_fail(t, 1));
            assert!(!plan.map_should_fail(t, 2));
        }
    }

    #[test]
    fn abort_error_displays() {
        let e = JobAborted {
            phase: "map",
            task: 3,
            attempts: 4,
        };
        assert!(e.to_string().contains("map task 3"));
    }
}
