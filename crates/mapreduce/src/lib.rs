//! # dash-mapreduce
//!
//! A self-contained MapReduce runtime standing in for the 4-node Hadoop
//! cluster the Dash paper (ICDCS 2012) ran its database-crawling and
//! fragment-indexing workflows on.
//!
//! Jobs **really execute** — maps and reduces run in parallel worker
//! threads — and every byte that crosses a phase boundary is metered:
//! input read, map spill, shuffle transfer, merge-sort passes, reduce
//! read/write. From those meters a calibrated [`ClusterConfig`] cost model
//! derives a *simulated elapsed time* per phase, which is what Figure 10 of
//! the paper plots. The paper's conclusions (the integrated algorithm beats
//! the stepwise one except on tiny operands; most jobs are map/I-O bound)
//! fall out of shuffle volume, which this runtime measures exactly.
//!
//! ## Word count in six lines
//!
//! ```
//! use dash_mapreduce::{run_job, ClusterConfig, JobSpec};
//!
//! let docs = vec!["burger experts".to_string(), "unique burger".to_string()];
//! let cluster = ClusterConfig::default();
//! let result = run_job(
//!     &cluster,
//!     JobSpec::new("wordcount"),
//!     &docs,
//!     |doc, emit| {
//!         for w in doc.split_whitespace() {
//!             emit(w.to_string(), 1u64);
//!         }
//!     },
//!     |word, counts, emit| emit((word.clone(), counts.iter().sum::<u64>())),
//! );
//! let burgers = result
//!     .output
//!     .iter()
//!     .find(|(w, _)| w == "burger")
//!     .map(|(_, n)| *n);
//! assert_eq!(burgers, Some(2));
//! assert!(result.stats.sim_total_secs() > 0.0);
//! ```

pub mod bytes;
pub mod config;
pub mod faults;
pub mod runner;
pub mod stats;
pub mod workflow;

pub use bytes::ByteSized;
pub use config::ClusterConfig;
pub use faults::{AttemptCounters, FaultPlan, JobAborted};
pub use runner::{run_job, run_job_with_faults, JobResult, JobSpec};
pub use stats::{JobStats, PhaseStats, WorkflowStats};
pub use workflow::Workflow;
