//! # dash-mapreduce
//!
//! A self-contained MapReduce runtime standing in for the 4-node Hadoop
//! cluster the Dash paper (ICDCS 2012) ran its database-crawling and
//! fragment-indexing workflows on.
//!
//! Jobs **really execute** — maps and reduces run in parallel worker
//! threads — and every byte that crosses a phase boundary is metered:
//! input read, map spill, shuffle transfer, merge-sort passes, reduce
//! read/write. From those meters a calibrated [`ClusterConfig`] cost model
//! derives a *simulated elapsed time* per phase, which is what Figure 10 of
//! the paper plots. The paper's conclusions (the integrated algorithm beats
//! the stepwise one except on tiny operands; most jobs are map/I-O bound)
//! fall out of shuffle volume, which this runtime measures exactly.
//!
//! Two ordering guarantees are load-bearing for downstream byte-exact
//! consumers (the crawl workflows and `dash_core::ingest`'s
//! distributed index build): the shuffle sort is **stable**, and split
//! outputs concatenate in **split-index order** — so one key's values
//! always arrive at its reducer in global input order, and a job's
//! output is a pure, deterministic function of its input regardless of
//! thread scheduling or injected faults.
//!
//! Fault injection is first-class: [`run_job_with_faults`] (and
//! [`Workflow::run_with_faults`]) executes under a [`FaultPlan`] that
//! kills scheduled task attempts; the runner retries up to
//! `max_attempts`, charges every attempt to the cost model, and aborts
//! with [`JobAborted`] when a task exhausts its budget. The ingest
//! workflow's equivalence tier (`tests/ingest_equivalence.rs`) holds
//! the output byte-identical across any surviving fault schedule.
//! Edge cases are pinned by the runner's own tests: empty inputs plan
//! zero map tasks (a fault plan targeting task 0 never fires), and
//! [`JobSpec::reduce_tasks`]`(0)` declares a map-only job — shuffle
//! and reduce are skipped and the map phase alone is metered.
//!
//! ## Word count in six lines
//!
//! ```
//! use dash_mapreduce::{run_job, ClusterConfig, JobSpec};
//!
//! let docs = vec!["burger experts".to_string(), "unique burger".to_string()];
//! let cluster = ClusterConfig::default();
//! let result = run_job(
//!     &cluster,
//!     JobSpec::new("wordcount"),
//!     &docs,
//!     |doc, emit| {
//!         for w in doc.split_whitespace() {
//!             emit(w.to_string(), 1u64);
//!         }
//!     },
//!     |word, counts, emit| emit((word.clone(), counts.iter().sum::<u64>())),
//! );
//! let burgers = result
//!     .output
//!     .iter()
//!     .find(|(w, _)| w == "burger")
//!     .map(|(_, n)| *n);
//! assert_eq!(burgers, Some(2));
//! assert!(result.stats.sim_total_secs() > 0.0);
//! ```

pub mod bytes;
pub mod config;
pub mod faults;
pub mod runner;
pub mod stats;
pub mod workflow;

pub use bytes::ByteSized;
pub use config::ClusterConfig;
pub use faults::{AttemptCounters, FaultPlan, JobAborted};
pub use runner::{run_job, run_job_with_faults, JobResult, JobSpec};
pub use stats::{JobStats, PhaseStats, WorkflowStats};
pub use workflow::Workflow;
