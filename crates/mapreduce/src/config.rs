//! Cluster description and cost-model parameters.

/// Describes the (simulated) commodity cluster a workflow runs on, and the
/// constants of its cost model.
///
/// Defaults are calibrated to the paper's testbed: four Intel Xeon 2.8 GHz
/// machines, 4 GB RAM, gigabit ethernet, Hadoop 0.20 — i.e. mid-2000s
/// commodity spinning disks (~80 MB/s sequential), ~110 MB/s usable
/// point-to-point network, and multi-second JVM job-startup latency.
///
/// ```
/// use dash_mapreduce::ClusterConfig;
/// let cluster = ClusterConfig::default();
/// assert_eq!(cluster.nodes, 4);
/// let faster = ClusterConfig { nodes: 16, ..ClusterConfig::default() };
/// assert!(faster.total_map_slots() > cluster.total_map_slots());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Concurrent map tasks per node.
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
    /// Sequential disk bandwidth per node, bytes/second.
    pub disk_bytes_per_sec: f64,
    /// Usable network bandwidth per node, bytes/second.
    pub network_bytes_per_sec: f64,
    /// CPU cost to process one record through a map or reduce function,
    /// seconds.
    pub cpu_secs_per_record: f64,
    /// CPU cost per byte of record payload (parsing/serialization), seconds.
    pub cpu_secs_per_byte: f64,
    /// Fixed per-job startup latency (JVM spawn, scheduling), seconds.
    pub job_startup_secs: f64,
    /// HDFS-style block size used to decide how many map splits a job gets.
    pub split_bytes: usize,
    /// Reduce-side merge-sort buffer per task; shuffles larger than this
    /// need additional external merge passes.
    pub sort_buffer_bytes: f64,
    /// External merge fan-in (Hadoop's `io.sort.factor`).
    pub merge_factor: f64,
    /// Real worker threads used to actually execute the job in-process.
    /// This affects wall-clock speed only — never the simulated time.
    pub real_threads: usize,
    /// HDFS replication factor applied to reduce-side output writes (job
    /// outputs land in the distributed filesystem; map spills stay
    /// local). Hadoop's default is 3.
    pub hdfs_replication: f64,
    /// Data-volume extrapolation factor: every metered byte and record is
    /// charged `byte_scale` times in the cost model (and split planning
    /// sees correspondingly more blocks). `1.0` simulates exactly the
    /// executed data. Larger values model the same *workload shape* at
    /// cluster-scale volumes — e.g. `300.0` maps this repository's
    /// laptop-scale TPC-H datasets onto the paper's 725 MB–7.4 GB ones,
    /// where job I/O rather than job startup dominates. Job startup is
    /// never scaled.
    pub byte_scale: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            map_slots_per_node: 2,
            reduce_slots_per_node: 2,
            disk_bytes_per_sec: 80.0e6,
            network_bytes_per_sec: 110.0e6,
            cpu_secs_per_record: 1.5e-6,
            cpu_secs_per_byte: 6.0e-9,
            job_startup_secs: 6.0,
            split_bytes: 64 * 1024 * 1024,
            sort_buffer_bytes: 100.0e6,
            merge_factor: 10.0,
            real_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            hdfs_replication: 3.0,
            byte_scale: 1.0,
        }
    }
}

impl ClusterConfig {
    /// A single-node configuration (used by the fragment-graph builder,
    /// which the paper runs on one computer).
    pub fn single_node() -> Self {
        ClusterConfig {
            nodes: 1,
            ..ClusterConfig::default()
        }
    }

    /// The paper's testbed with data volumes extrapolated to TPC-H scale:
    /// this repository's generated datasets are ≈300× smaller than the
    /// paper's (Table II), so the Figure 10 harness charges each metered
    /// byte 300 times. Workload *shape* (relative SW/INT costs, phase
    /// breakdowns, scale growth) is preserved; startup costs are not
    /// scaled, which is exactly why the stepwise algorithm keeps its
    /// tiny-operand advantage.
    pub fn paper_scale() -> Self {
        ClusterConfig {
            byte_scale: 300.0,
            ..ClusterConfig::default()
        }
    }

    /// Total concurrent map tasks across the cluster.
    pub fn total_map_slots(&self) -> usize {
        (self.nodes * self.map_slots_per_node).max(1)
    }

    /// Total concurrent reduce tasks across the cluster.
    pub fn total_reduce_slots(&self) -> usize {
        (self.nodes * self.reduce_slots_per_node).max(1)
    }

    /// External merge-sort passes needed for `scaled_bytes` of shuffle
    /// data: one in-memory pass, plus one merge pass per `merge_factor`
    /// growth beyond the sort buffer.
    pub fn sort_passes(&self, scaled_bytes: f64) -> f64 {
        if scaled_bytes <= self.sort_buffer_bytes {
            return 1.0;
        }
        1.0 + (scaled_bytes / self.sort_buffer_bytes)
            .log(self.merge_factor.max(2.0))
            .ceil()
            .max(1.0)
    }

    /// How many map splits a job over `input_bytes` gets — one per block,
    /// like Hadoop ("Hadoop assigns nodes for map tasks according to the
    /// number of file blocks", §VII-A), but at least one.
    pub fn split_count(&self, input_bytes: usize) -> usize {
        input_bytes.div_ceil(self.split_bytes).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let c = ClusterConfig::default();
        assert_eq!(c.nodes, 4);
        assert_eq!(c.total_map_slots(), 8);
        assert_eq!(c.total_reduce_slots(), 8);
        assert!(c.job_startup_secs > 0.0);
    }

    #[test]
    fn split_count_rounds_up_and_floors_at_one() {
        let c = ClusterConfig::default();
        assert_eq!(c.split_count(0), 1);
        assert_eq!(c.split_count(1), 1);
        assert_eq!(c.split_count(c.split_bytes), 1);
        assert_eq!(c.split_count(c.split_bytes + 1), 2);
        assert_eq!(c.split_count(10 * c.split_bytes), 10);
    }

    #[test]
    fn single_node_has_one_node() {
        let c = ClusterConfig::single_node();
        assert_eq!(c.nodes, 1);
        assert_eq!(c.total_map_slots(), 2);
    }
}
