//! Execution statistics: per-phase byte/record meters plus simulated time.

use std::collections::BTreeMap;
use std::fmt;

/// Meters and simulated elapsed time for one phase (map, shuffle+sort or
/// reduce) of one job.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseStats {
    /// Records entering the phase.
    pub input_records: u64,
    /// Bytes entering the phase.
    pub input_bytes: u64,
    /// Records leaving the phase.
    pub output_records: u64,
    /// Bytes leaving the phase.
    pub output_bytes: u64,
    /// Simulated elapsed seconds charged by the cost model.
    pub sim_secs: f64,
}

/// Statistics for one MapReduce job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStats {
    /// Job name (e.g. `"join restaurant⋈comment"`).
    pub name: String,
    /// Workflow phase label used for Figure-10-style stacked breakdowns
    /// (e.g. `"SW-Jn"`, `"INT-Ext"`). Empty when the job is standalone.
    pub label: String,
    /// Number of map splits (≅ map tasks).
    pub map_tasks: usize,
    /// Number of reduce partitions (≅ reduce tasks).
    pub reduce_tasks: usize,
    /// Map phase meters.
    pub map: PhaseStats,
    /// Shuffle + merge-sort meters (input = map output after combining).
    pub shuffle: PhaseStats,
    /// Reduce phase meters.
    pub reduce: PhaseStats,
    /// Fixed job startup charge, seconds.
    pub startup_secs: f64,
    /// Bytes saved by the combiner (0 when none installed).
    pub combiner_saved_bytes: u64,
    /// Total map-task attempts (> `map_tasks` when faults were injected
    /// and retried).
    pub map_task_attempts: u64,
    /// Total reduce-task attempts (> `reduce_tasks` under faults).
    pub reduce_task_attempts: u64,
    /// Real wall-clock seconds the in-process execution took.
    pub wall_secs: f64,
}

impl JobStats {
    /// Total simulated elapsed time for the job.
    pub fn sim_total_secs(&self) -> f64 {
        self.startup_secs + self.map.sim_secs + self.shuffle.sim_secs + self.reduce.sim_secs
    }
}

impl fmt::Display for JobStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} maps={:<3} reds={:<2} in={:>10}B shuffle={:>10}B out={:>10}B sim={:>8.2}s",
            self.name,
            self.map_tasks,
            self.reduce_tasks,
            self.map.input_bytes,
            self.shuffle.input_bytes,
            self.reduce.output_bytes,
            self.sim_total_secs(),
        )
    }
}

/// Aggregated statistics over a multi-job workflow (e.g. the whole
/// stepwise crawl+index pipeline for one query on one dataset).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkflowStats {
    /// Per-job statistics in execution order.
    pub jobs: Vec<JobStats>,
}

impl WorkflowStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        WorkflowStats::default()
    }

    /// Appends one job's stats.
    pub fn push(&mut self, stats: JobStats) {
        self.jobs.push(stats);
    }

    /// Total simulated elapsed time across jobs (jobs run sequentially in a
    /// workflow, as in the paper's pipelines).
    pub fn sim_total_secs(&self) -> f64 {
        self.jobs.iter().map(JobStats::sim_total_secs).sum()
    }

    /// Total real wall-clock seconds.
    pub fn wall_total_secs(&self) -> f64 {
        self.jobs.iter().map(|j| j.wall_secs).sum()
    }

    /// Total bytes shuffled across all jobs — the quantity the integrated
    /// algorithm is designed to minimize.
    pub fn shuffle_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.shuffle.input_bytes).sum()
    }

    /// Simulated seconds grouped by job label, in first-appearance order —
    /// the stacked bars of Figure 10.
    pub fn label_breakdown(&self) -> Vec<(String, f64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: BTreeMap<String, f64> = BTreeMap::new();
        for j in &self.jobs {
            let label = if j.label.is_empty() {
                j.name.clone()
            } else {
                j.label.clone()
            };
            if !totals.contains_key(&label) {
                order.push(label.clone());
            }
            *totals.entry(label).or_insert(0.0) += j.sim_total_secs();
        }
        order
            .into_iter()
            .map(|l| {
                let v = totals[&l];
                (l, v)
            })
            .collect()
    }
}

impl fmt::Display for WorkflowStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for j in &self.jobs {
            writeln!(f, "{j}")?;
        }
        write!(f, "total sim elapsed: {:.2}s", self.sim_total_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(label: &str, map_secs: f64) -> JobStats {
        JobStats {
            name: format!("job-{label}"),
            label: label.to_string(),
            map_tasks: 1,
            reduce_tasks: 1,
            map: PhaseStats {
                sim_secs: map_secs,
                ..Default::default()
            },
            shuffle: PhaseStats::default(),
            reduce: PhaseStats::default(),
            startup_secs: 1.0,
            combiner_saved_bytes: 0,
            map_task_attempts: 1,
            reduce_task_attempts: 1,
            wall_secs: 0.01,
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut w = WorkflowStats::new();
        w.push(job("A", 2.0));
        w.push(job("B", 3.0));
        assert!((w.sim_total_secs() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn label_breakdown_groups_and_orders() {
        let mut w = WorkflowStats::new();
        w.push(job("Jn", 1.0));
        w.push(job("Jn", 2.0));
        w.push(job("Idx", 4.0));
        let breakdown = w.label_breakdown();
        assert_eq!(breakdown.len(), 2);
        assert_eq!(breakdown[0].0, "Jn");
        assert!((breakdown[0].1 - 5.0).abs() < 1e-9);
        assert_eq!(breakdown[1].0, "Idx");
    }

    #[test]
    fn display_mentions_total() {
        let mut w = WorkflowStats::new();
        w.push(job("A", 2.0));
        assert!(w.to_string().contains("total sim elapsed"));
    }
}
