//! Job execution: real multi-threaded map/shuffle/reduce plus the
//! simulated-time cost model.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::bytes::ByteSized;
use crate::config::ClusterConfig;
use crate::faults::{FaultPlan, JobAborted};
use crate::stats::{JobStats, PhaseStats};

/// Declarative description of one job: its name, an optional phase label
/// (used in Figure-10-style breakdowns), the reducer parallelism, and an
/// optional combiner.
pub struct JobSpec<K, V> {
    name: String,
    label: String,
    reduce_tasks: Option<usize>,
    #[allow(clippy::type_complexity)]
    combiner: Option<Box<dyn Fn(&K, Vec<V>) -> Vec<V> + Send + Sync>>,
}

impl<K, V> std::fmt::Debug for JobSpec<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("label", &self.label)
            .field("reduce_tasks", &self.reduce_tasks)
            .field("has_combiner", &self.combiner.is_some())
            .finish()
    }
}

impl<K, V> JobSpec<K, V> {
    /// Creates a spec with defaults (cluster-wide reduce slots, no
    /// combiner, empty label).
    pub fn new(name: impl Into<String>) -> Self {
        JobSpec {
            name: name.into(),
            label: String::new(),
            reduce_tasks: None,
            combiner: None,
        }
    }

    /// Sets the phase label (`"SW-Jn"`, `"INT-Ext"`, ...).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Overrides the number of reduce partitions. `0` declares a
    /// map-only job: the shuffle and reduce phases are skipped entirely,
    /// map output is discarded (this in-process runtime has no typed
    /// map-only output channel), and the returned [`JobResult`] carries
    /// an empty output with map-phase meters only.
    pub fn reduce_tasks(mut self, n: usize) -> Self {
        self.reduce_tasks = Some(n);
        self
    }

    /// Installs a map-side combiner, applied per split before the shuffle —
    /// exactly where Hadoop applies it. Shuffle bytes are metered *after*
    /// combining, so jobs with additive values (word counts, θ sums) see
    /// the same traffic reduction they would on a real cluster.
    pub fn combiner(
        mut self,
        combiner: impl Fn(&K, Vec<V>) -> Vec<V> + Send + Sync + 'static,
    ) -> Self {
        self.combiner = Some(Box::new(combiner));
        self
    }
}

/// The materialized output of a job together with its statistics.
#[derive(Debug, Clone)]
pub struct JobResult<O> {
    /// Reduce outputs, ordered by partition then key.
    pub output: Vec<O>,
    /// Byte meters and simulated time.
    pub stats: JobStats,
}

struct SplitOutput<K, V> {
    pairs: Vec<(K, V)>,
    in_records: u64,
    in_bytes: u64,
    raw_out_bytes: u64,
    out_records: u64,
    out_bytes: u64,
}

/// Runs one MapReduce job on `cluster`.
///
/// `mapper` is invoked once per input record with an `emit(key, value)`
/// sink; `reducer` once per distinct key with all its values (grouped and
/// key-sorted within a partition, as Hadoop guarantees) and an
/// `emit(output)` sink. Map tasks and reduce tasks execute on real worker
/// threads; the returned [`JobStats`] carries both real wall-clock and
/// model-simulated elapsed time.
///
/// Determinism: outputs are ordered by (partition, key), and the hash
/// partitioner uses fixed-seed hashing, so repeated runs produce identical
/// outputs and identical simulated times.
pub fn run_job<I, K, V, O, M, R>(
    cluster: &ClusterConfig,
    spec: JobSpec<K, V>,
    inputs: &[I],
    mapper: M,
    reducer: R,
) -> JobResult<O>
where
    I: Sync + ByteSized,
    K: Ord + Hash + Clone + Send + ByteSized,
    V: Send + ByteSized,
    O: Send + ByteSized,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
{
    run_job_with_faults(cluster, spec, inputs, mapper, reducer, &FaultPlan::new())
        .expect("no faults scheduled, job cannot abort")
}

/// [`run_job`] under a [`FaultPlan`]: scheduled task attempts fail and
/// are retried (up to `plan.max_attempts`), every attempt is charged by
/// the cost model, and the output is identical to a fault-free run —
/// MapReduce's recovery guarantee.
///
/// # Errors
///
/// Returns [`JobAborted`] when some task fails `max_attempts` times.
pub fn run_job_with_faults<I, K, V, O, M, R>(
    cluster: &ClusterConfig,
    spec: JobSpec<K, V>,
    inputs: &[I],
    mapper: M,
    reducer: R,
    plan: &FaultPlan,
) -> Result<JobResult<O>, JobAborted>
where
    I: Sync + ByteSized,
    K: Ord + Hash + Clone + Send + ByteSized,
    V: Send + ByteSized,
    O: Send + ByteSized,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
{
    let wall_start = Instant::now();

    // ---- plan splits (one per HDFS-style block) ----
    let splits = plan_splits(cluster, inputs);
    let map_tasks = splits.len();
    let reduce_tasks = spec
        .reduce_tasks
        .unwrap_or_else(|| cluster.total_reduce_slots());

    // Resolve task attempts up front: the successful attempt actually
    // executes; failed attempts are charged as wasted full-task work.
    let map_attempts = attempts_for(map_tasks, plan.max_attempts, |t, a| {
        plan.map_should_fail(t, a)
    })
    .map_err(|(task, attempts)| JobAborted {
        phase: "map",
        task,
        attempts,
    })?;
    let reduce_attempts = attempts_for(reduce_tasks, plan.max_attempts, |t, a| {
        plan.reduce_should_fail(t, a)
    })
    .map_err(|(task, attempts)| JobAborted {
        phase: "reduce",
        task,
        attempts,
    })?;

    // ---- map phase (real threads) ----
    let split_outputs: Vec<SplitOutput<K, V>> = {
        let results: Mutex<Vec<Option<SplitOutput<K, V>>>> =
            Mutex::new((0..map_tasks).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let threads = cluster.real_threads.clamp(1, map_tasks.max(1));
        let spec_ref = &spec;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= map_tasks {
                        break;
                    }
                    let (lo, hi) = splits[idx];
                    let chunk = &inputs[lo..hi];
                    let mut pairs: Vec<(K, V)> = Vec::new();
                    let mut in_bytes = 0u64;
                    for rec in chunk {
                        in_bytes += rec.byte_size() as u64;
                        mapper(rec, &mut |k, v| pairs.push((k, v)));
                    }
                    let raw_out_bytes: u64 = pairs.iter().map(|p| p.byte_size() as u64).sum();
                    let pairs = match &spec_ref.combiner {
                        Some(c) => combine(pairs, c.as_ref()),
                        None => pairs,
                    };
                    let out_bytes: u64 = pairs.iter().map(|p| p.byte_size() as u64).sum();
                    let out = SplitOutput {
                        out_records: pairs.len() as u64,
                        in_records: chunk.len() as u64,
                        in_bytes,
                        raw_out_bytes,
                        out_bytes,
                        pairs,
                    };
                    results.lock()[idx] = Some(out);
                });
            }
        });
        results
            .into_inner()
            .into_iter()
            .map(|o| o.expect("split executed"))
            .collect()
    };

    // ---- meters: map phase ----
    let split_meters: Vec<(u64, u64, u64)> = split_outputs
        .iter()
        .map(|s| (s.in_records, s.in_bytes, s.out_bytes))
        .collect();
    let mut map_phase = PhaseStats::default();
    for s in &split_outputs {
        map_phase.input_records += s.in_records;
        map_phase.input_bytes += s.in_bytes;
        map_phase.output_records += s.out_records;
        map_phase.output_bytes += s.out_bytes;
    }
    let combiner_saved_bytes: u64 = split_outputs
        .iter()
        .map(|s| s.raw_out_bytes.saturating_sub(s.out_bytes))
        .sum();

    // ---- shuffle: hash partition + sort ----
    // `reduce_tasks == 0` is a map-only job: nothing is shuffled (the
    // partition loop below would index into an empty vector), map output
    // is dropped, and the shuffle/reduce meters stay zeroed.
    let mut partitions: Vec<Vec<(K, V)>> = (0..reduce_tasks).map(|_| Vec::new()).collect();
    if reduce_tasks > 0 {
        for split in split_outputs {
            for (k, v) in split.pairs {
                let p = partition_of(&k, reduce_tasks);
                partitions[p].push((k, v));
            }
        }
    }
    for part in &mut partitions {
        part.sort_by(|a, b| a.0.cmp(&b.0));
    }
    let shuffle_bytes = if reduce_tasks > 0 {
        map_phase.output_bytes
    } else {
        0
    };
    let shuffle_records = if reduce_tasks > 0 {
        map_phase.output_records
    } else {
        0
    };
    let partition_meters: Vec<(u64, u64)> = partitions
        .iter()
        .map(|p| {
            (
                p.len() as u64,
                p.iter().map(|kv| kv.byte_size() as u64).sum(),
            )
        })
        .collect();

    // ---- reduce phase (real threads, partitions moved to workers) ----
    let reduce_outputs: Vec<(Vec<O>, u64)> = {
        #[allow(clippy::type_complexity)]
        let slots: Vec<Mutex<Option<Vec<(K, V)>>>> = partitions
            .into_iter()
            .map(|p| Mutex::new(Some(p)))
            .collect();
        #[allow(clippy::type_complexity)]
        let results: Mutex<Vec<Option<(Vec<O>, u64)>>> =
            Mutex::new((0..reduce_tasks).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let threads = cluster.real_threads.clamp(1, reduce_tasks.max(1));
        let reducer = &reducer;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= reduce_tasks {
                        break;
                    }
                    let part = slots[idx].lock().take().expect("partition present");
                    let mut out: Vec<O> = Vec::new();
                    let mut out_bytes = 0u64;
                    for (key, values) in group_sorted(part) {
                        reducer(&key, values, &mut |o| {
                            out_bytes += o.byte_size() as u64;
                            out.push(o);
                        });
                    }
                    results.lock()[idx] = Some((out, out_bytes));
                });
            }
        });
        results
            .into_inner()
            .into_iter()
            .map(|o| o.expect("partition executed"))
            .collect()
    };

    let mut reduce_phase = PhaseStats {
        input_records: shuffle_records,
        input_bytes: shuffle_bytes,
        ..Default::default()
    };
    let mut output = Vec::new();
    for (part_out, bytes) in reduce_outputs {
        reduce_phase.output_records += part_out.len() as u64;
        reduce_phase.output_bytes += bytes;
        output.extend(part_out);
    }

    // ---- cost model (failed attempts charged as full re-executions) ----
    let charged_splits: Vec<(u64, u64, u64, u32)> = split_meters
        .iter()
        .zip(&map_attempts)
        .map(|(&(r0, b0, o0), &a)| (r0, b0, o0, a))
        .collect();
    map_phase.sim_secs = simulate_map_attempts(cluster, &charged_splits);
    let shuffle_phase = PhaseStats {
        input_records: shuffle_records,
        input_bytes: shuffle_bytes,
        output_records: shuffle_records,
        output_bytes: shuffle_bytes,
        sim_secs: simulate_shuffle(cluster, shuffle_bytes),
    };
    let charged_partitions: Vec<(u64, u64, u32)> = partition_meters
        .iter()
        .zip(&reduce_attempts)
        .map(|(&(r0, b0), &a)| (r0, b0, a))
        .collect();
    reduce_phase.sim_secs =
        simulate_reduce_attempts(cluster, &charged_partitions, reduce_phase.output_bytes);

    Ok(JobResult {
        output,
        stats: JobStats {
            name: spec.name,
            label: spec.label,
            map_tasks,
            reduce_tasks,
            map: map_phase,
            shuffle: shuffle_phase,
            reduce: reduce_phase,
            startup_secs: cluster.job_startup_secs,
            combiner_saved_bytes,
            map_task_attempts: map_attempts.iter().map(|&a| a as u64).sum(),
            reduce_task_attempts: reduce_attempts.iter().map(|&a| a as u64).sum(),
            wall_secs: wall_start.elapsed().as_secs_f64(),
        },
    })
}

/// Attempts needed per task under the fault plan, or `Err((task,
/// attempts))` when a task exhausts `max_attempts`.
fn attempts_for(
    tasks: usize,
    max_attempts: u32,
    should_fail: impl Fn(usize, u32) -> bool,
) -> Result<Vec<u32>, (usize, u32)> {
    let mut out = Vec::with_capacity(tasks);
    for t in 0..tasks {
        let mut attempt = 0u32;
        while should_fail(t, attempt) {
            attempt += 1;
            if attempt >= max_attempts {
                return Err((t, attempt));
            }
        }
        out.push(attempt + 1);
    }
    Ok(out)
}

/// Packs inputs into contiguous splits of roughly `split_bytes` each
/// (in *scaled* bytes, so split counts match the modeled data volume —
/// "Hadoop assigns nodes for map tasks according to the number of file
/// blocks", §VII-A).
fn plan_splits<I: ByteSized>(cluster: &ClusterConfig, inputs: &[I]) -> Vec<(usize, usize)> {
    if inputs.is_empty() {
        // No blocks, no map tasks: an empty job must not schedule a
        // phantom split, or a FaultPlan targeting map task 0 could abort
        // a job that has nothing to do.
        return Vec::new();
    }
    let effective_split =
        ((cluster.split_bytes as f64 / cluster.byte_scale.max(1.0)) as usize).max(1);
    let mut splits = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, rec) in inputs.iter().enumerate() {
        acc += rec.byte_size();
        if acc >= effective_split {
            splits.push((start, i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    if start < inputs.len() {
        splits.push((start, inputs.len()));
    }
    splits
}

fn partition_of<K: Hash>(key: &K, reduce_tasks: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % reduce_tasks.max(1)
}

/// Groups a key-sorted pair vector into `(key, values)` runs, consuming it.
fn group_sorted<K: PartialEq, V>(pairs: Vec<(K, V)>) -> Vec<(K, Vec<V>)> {
    let mut groups: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in pairs {
        match groups.last_mut() {
            Some((gk, vs)) if *gk == k => vs.push(v),
            _ => groups.push((k, vec![v])),
        }
    }
    groups
}

fn combine<K, V>(
    mut pairs: Vec<(K, V)>,
    combiner: &(dyn Fn(&K, Vec<V>) -> Vec<V> + Send + Sync),
) -> Vec<(K, V)>
where
    K: Ord + Clone,
{
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out: Vec<(K, V)> = Vec::with_capacity(pairs.len());
    for (key, values) in group_sorted(pairs) {
        for v in combiner(&key, values) {
            out.push((key.clone(), v));
        }
    }
    out
}

// Retries of one task run *sequentially* (the scheduler only reschedules
// after detecting the failure), so a task with `a` attempts costs `a`
// times its single-attempt cost — modeled by scaling its meters, which
// the cost functions are linear in.
fn simulate_map_attempts(cluster: &ClusterConfig, splits: &[(u64, u64, u64, u32)]) -> f64 {
    let scaled: Vec<(u64, u64, u64)> = splits
        .iter()
        .map(|&(r, b, o, attempts)| {
            let a = attempts as u64;
            (r * a, b * a, o * a)
        })
        .collect();
    simulate_map(cluster, &scaled)
}

fn simulate_reduce_attempts(
    cluster: &ClusterConfig,
    partitions: &[(u64, u64, u32)],
    total_out_bytes: u64,
) -> f64 {
    let scaled: Vec<(u64, u64)> = partitions
        .iter()
        .map(|&(r, b, attempts)| {
            let a = attempts as u64;
            (r * a, b * a)
        })
        .collect();
    simulate_reduce(cluster, &scaled, total_out_bytes)
}

fn simulate_map(cluster: &ClusterConfig, splits: &[(u64, u64, u64)]) -> f64 {
    // Each split: read input + CPU per record/byte + spill map output.
    // All data terms are charged `byte_scale` times (volume
    // extrapolation); see `ClusterConfig::byte_scale`.
    let scale = cluster.byte_scale;
    let costs: Vec<f64> = splits
        .iter()
        .map(|&(records, in_bytes, out_bytes)| {
            scale
                * (in_bytes as f64 / cluster.disk_bytes_per_sec
                    + records as f64 * cluster.cpu_secs_per_record
                    + in_bytes as f64 * cluster.cpu_secs_per_byte
                    + out_bytes as f64 / cluster.disk_bytes_per_sec)
        })
        .collect();
    makespan(&costs, cluster.total_map_slots())
}

fn simulate_shuffle(cluster: &ClusterConfig, shuffle_bytes: u64) -> f64 {
    let aggregate_net = cluster.network_bytes_per_sec * cluster.nodes as f64;
    let aggregate_disk = cluster.disk_bytes_per_sec * cluster.nodes as f64;
    let scaled = shuffle_bytes as f64 * cluster.byte_scale;
    let passes = cluster.sort_passes(scaled);
    scaled / aggregate_net + scaled * passes / aggregate_disk
}

fn simulate_reduce(
    cluster: &ClusterConfig,
    partitions: &[(u64, u64)],
    total_out_bytes: u64,
) -> f64 {
    let n = partitions.len().max(1) as f64;
    let scale = cluster.byte_scale;
    let costs: Vec<f64> = partitions
        .iter()
        .map(|&(records, in_bytes)| {
            // Reduce outputs land in HDFS with replication.
            let out_share = total_out_bytes as f64 / n * cluster.hdfs_replication;
            scale
                * (in_bytes as f64 / cluster.disk_bytes_per_sec
                    + records as f64 * cluster.cpu_secs_per_record
                    + in_bytes as f64 * cluster.cpu_secs_per_byte
                    + out_share / cluster.disk_bytes_per_sec)
        })
        .collect();
    makespan(&costs, cluster.total_reduce_slots())
}

/// Greedy longest-processing-time makespan: the simulated duration of a
/// phase whose tasks run on `slots` parallel executors.
fn makespan(costs: &[f64], slots: usize) -> f64 {
    let mut sorted: Vec<f64> = costs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite costs"));
    let mut loads = vec![0.0f64; slots.max(1)];
    for c in sorted {
        let min = loads
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).expect("finite loads"))
            .expect("at least one slot");
        *min += c;
    }
    loads.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_balances() {
        assert!((makespan(&[3.0, 3.0, 3.0, 3.0], 2) - 6.0).abs() < 1e-9);
        assert!((makespan(&[5.0, 1.0, 1.0, 1.0], 2) - 5.0).abs() < 1e-9);
        assert_eq!(makespan(&[], 4), 0.0);
    }

    #[test]
    fn group_sorted_runs() {
        let groups = group_sorted(vec![(1, 'a'), (1, 'b'), (2, 'c')]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1, vec!['a', 'b']);
    }

    #[test]
    fn word_count_end_to_end() {
        let docs: Vec<String> = vec![
            "the quick brown fox".into(),
            "the lazy dog".into(),
            "the end".into(),
        ];
        let cluster = ClusterConfig::default();
        let result = run_job(
            &cluster,
            JobSpec::new("wc"),
            &docs,
            |d: &String, emit| {
                for w in d.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |w: &String, counts: Vec<u64>, emit| emit((w.clone(), counts.iter().sum::<u64>())),
        );
        let the = result.output.iter().find(|(w, _)| w == "the").unwrap();
        assert_eq!(the.1, 3);
        assert_eq!(result.output.iter().map(|(_, c)| *c).sum::<u64>(), 9);
        assert!(result.stats.sim_total_secs() >= cluster.job_startup_secs);
        assert!(result.stats.wall_secs > 0.0);
    }

    #[test]
    fn combiner_reduces_shuffle_bytes() {
        let docs: Vec<String> = (0..50).map(|_| "a a a a a a a a".to_string()).collect();
        let cluster = ClusterConfig::default();
        let mapper = |d: &String, emit: &mut dyn FnMut(String, u64)| {
            for w in d.split_whitespace() {
                emit(w.to_string(), 1u64);
            }
        };
        let reducer = |w: &String, counts: Vec<u64>, emit: &mut dyn FnMut((String, u64))| {
            emit((w.clone(), counts.iter().sum::<u64>()))
        };
        let plain = run_job(&cluster, JobSpec::new("wc"), &docs, mapper, reducer);
        let combined = run_job(
            &cluster,
            JobSpec::new("wc").combiner(|_k: &String, vs: Vec<u64>| vec![vs.iter().sum::<u64>()]),
            &docs,
            mapper,
            reducer,
        );
        assert_eq!(plain.output, combined.output);
        assert!(combined.stats.shuffle.input_bytes < plain.stats.shuffle.input_bytes);
        assert!(combined.stats.combiner_saved_bytes > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let docs: Vec<String> = (0..100)
            .map(|i| format!("w{} w{} shared", i, i % 7))
            .collect();
        let cluster = ClusterConfig::default();
        let run = || {
            run_job(
                &cluster,
                JobSpec::new("det").reduce_tasks(4),
                &docs,
                |d: &String, emit| {
                    for w in d.split_whitespace() {
                        emit(w.to_string(), 1u64);
                    }
                },
                |w: &String, c: Vec<u64>, emit| emit((w.clone(), c.len() as u64)),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.output, b.output);
        assert_eq!(a.stats.map.output_bytes, b.stats.map.output_bytes);
        assert!((a.stats.sim_total_secs() - b.stats.sim_total_secs()).abs() < 1e-12);
    }

    #[test]
    fn empty_input_still_runs() {
        let docs: Vec<String> = Vec::new();
        let result = run_job(
            &ClusterConfig::default(),
            JobSpec::new("empty"),
            &docs,
            |_d: &String, _emit: &mut dyn FnMut(String, u64)| {},
            |w: &String, _c: Vec<u64>, emit: &mut dyn FnMut(String)| emit(w.clone()),
        );
        assert!(result.output.is_empty());
        assert_eq!(result.stats.map.input_records, 0);
    }

    #[test]
    fn empty_input_plans_zero_map_tasks() {
        let docs: Vec<String> = Vec::new();
        let result = run_job(
            &ClusterConfig::default(),
            JobSpec::new("empty"),
            &docs,
            |_d: &String, _emit: &mut dyn FnMut(String, u64)| {},
            |w: &String, _c: Vec<u64>, emit: &mut dyn FnMut(String)| emit(w.clone()),
        );
        assert_eq!(result.stats.map_tasks, 0);
        assert_eq!(result.stats.map_task_attempts, 0);
        assert!(result.output.is_empty());
    }

    #[test]
    fn empty_input_survives_fault_plan_on_task_zero() {
        // An empty job schedules no map tasks, so a plan that would kill
        // map task 0 on every attempt has nothing to kill.
        let docs: Vec<String> = Vec::new();
        let mut plan = FaultPlan::new();
        for attempt in 0..plan.max_attempts {
            plan = plan.fail_map(0, attempt);
        }
        let result = run_job_with_faults(
            &ClusterConfig::default(),
            JobSpec::new("empty-faulted"),
            &docs,
            |_d: &String, _emit: &mut dyn FnMut(String, u64)| {},
            |w: &String, _c: Vec<u64>, emit: &mut dyn FnMut(String)| emit(w.clone()),
            &plan,
        )
        .expect("empty job cannot hit a map fault");
        assert!(result.output.is_empty());
        assert_eq!(result.stats.map_tasks, 0);
    }

    #[test]
    fn zero_reduce_tasks_yield_empty_output() {
        let docs: Vec<String> = vec!["a b c".into(), "d e".into()];
        let result = run_job(
            &ClusterConfig::default(),
            JobSpec::new("map-only").reduce_tasks(0),
            &docs,
            |d: &String, emit| {
                for w in d.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |w: &String, _c: Vec<u64>, emit: &mut dyn FnMut(String)| emit(w.clone()),
        );
        // Map ran and was metered; shuffle/reduce never happened.
        assert!(result.output.is_empty());
        assert_eq!(result.stats.reduce_tasks, 0);
        assert_eq!(result.stats.map.input_records, 2);
        assert_eq!(result.stats.map.output_records, 5);
        assert_eq!(result.stats.shuffle.input_bytes, 0);
        assert_eq!(result.stats.shuffle.sim_secs, 0.0);
        assert_eq!(result.stats.reduce.input_records, 0);
        assert_eq!(result.stats.reduce.output_records, 0);
        assert_eq!(result.stats.reduce_task_attempts, 0);
    }

    #[test]
    fn splits_respect_block_size() {
        let cluster = ClusterConfig {
            split_bytes: 32,
            ..ClusterConfig::default()
        };
        let inputs: Vec<String> = (0..10).map(|_| "x".repeat(12).to_string()).collect();
        // Each record is 16 bytes; two fill a 32-byte block.
        let splits = plan_splits(&cluster, &inputs);
        assert_eq!(splits.len(), 5);
        assert_eq!(splits[0], (0, 2));
    }

    #[test]
    fn output_sorted_within_partition() {
        let docs: Vec<String> = vec!["b a d c".into()];
        let result = run_job(
            &ClusterConfig::default(),
            JobSpec::new("sorted").reduce_tasks(1),
            &docs,
            |d: &String, emit| {
                for w in d.split_whitespace() {
                    emit(w.to_string(), ());
                }
            },
            |w: &String, _vs: Vec<()>, emit| emit(w.clone()),
        );
        assert_eq!(result.output, vec!["a", "b", "c", "d"]);
    }
}
