//! Byte accounting for the cost model.
//!
//! Hadoop's performance is dominated by how many bytes each phase reads,
//! spills, shuffles and writes. The runtime therefore asks every key,
//! value, input and output type how large its on-the-wire representation
//! would be. Implementations should approximate a compact binary encoding
//! (fixed-width numbers, length-prefixed strings); exactness is not
//! required, consistency is.

/// Approximate serialized size in bytes.
pub trait ByteSized {
    /// The approximate number of bytes this value occupies when serialized
    /// for a shuffle or a file spill.
    fn byte_size(&self) -> usize;
}

impl ByteSized for u8 {
    fn byte_size(&self) -> usize {
        1
    }
}

impl ByteSized for u32 {
    fn byte_size(&self) -> usize {
        4
    }
}

impl ByteSized for u64 {
    fn byte_size(&self) -> usize {
        8
    }
}

impl ByteSized for i32 {
    fn byte_size(&self) -> usize {
        4
    }
}

impl ByteSized for i64 {
    fn byte_size(&self) -> usize {
        8
    }
}

impl ByteSized for usize {
    fn byte_size(&self) -> usize {
        8
    }
}

impl ByteSized for f64 {
    fn byte_size(&self) -> usize {
        8
    }
}

impl ByteSized for bool {
    fn byte_size(&self) -> usize {
        1
    }
}

impl ByteSized for () {
    fn byte_size(&self) -> usize {
        0
    }
}

impl ByteSized for String {
    fn byte_size(&self) -> usize {
        // 4-byte length prefix + UTF-8 payload.
        4 + self.len()
    }
}

impl ByteSized for &str {
    fn byte_size(&self) -> usize {
        4 + self.len()
    }
}

impl<T: ByteSized> ByteSized for Vec<T> {
    fn byte_size(&self) -> usize {
        4 + self.iter().map(ByteSized::byte_size).sum::<usize>()
    }
}

impl<T: ByteSized> ByteSized for Option<T> {
    fn byte_size(&self) -> usize {
        1 + self.as_ref().map_or(0, ByteSized::byte_size)
    }
}

impl<T: ByteSized + ?Sized> ByteSized for &T {
    fn byte_size(&self) -> usize {
        (**self).byte_size()
    }
}

impl<T: ByteSized + ?Sized> ByteSized for Box<T> {
    fn byte_size(&self) -> usize {
        (**self).byte_size()
    }
}

impl<A: ByteSized, B: ByteSized> ByteSized for (A, B) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size()
    }
}

impl<A: ByteSized, B: ByteSized, C: ByteSized> ByteSized for (A, B, C) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size()
    }
}

impl<A: ByteSized, B: ByteSized, C: ByteSized, D: ByteSized> ByteSized for (A, B, C, D) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size() + self.3.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(5u64.byte_size(), 8);
        assert_eq!(5i32.byte_size(), 4);
        assert_eq!(true.byte_size(), 1);
        assert_eq!(().byte_size(), 0);
    }

    #[test]
    fn strings_are_length_prefixed() {
        assert_eq!("abc".byte_size(), 7);
        assert_eq!(String::from("abcd").byte_size(), 8);
    }

    #[test]
    fn containers_nest() {
        let v = vec!["ab".to_string(), "c".to_string()];
        assert_eq!(v.byte_size(), 4 + 6 + 5);
        assert_eq!(Some(1u64).byte_size(), 9);
        assert_eq!(None::<u64>.byte_size(), 1);
        assert_eq!(("ab", 1u64).byte_size(), 6 + 8);
        assert_eq!(("a", 1u64, 2u64).byte_size(), 5 + 16);
    }

    #[test]
    fn references_delegate() {
        let s = String::from("xy");
        let r: &String = &s;
        assert_eq!(r.byte_size(), s.byte_size());
        let b: Box<String> = Box::new(s.clone());
        assert_eq!(b.byte_size(), s.byte_size());
    }
}
