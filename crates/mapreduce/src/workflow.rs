//! Multi-job workflows.
//!
//! The paper's crawling/indexing pipelines are DAG-shaped sequences of MR
//! jobs ("the design of MR applications as a workflow of MR jobs is
//! critical to performance", §II). [`Workflow`] is a thin accumulator that
//! runs jobs on one cluster and aggregates their [`JobStats`] so the bench
//! harness can print Figure-10-style stacked breakdowns.

use std::hash::Hash;

use crate::bytes::ByteSized;
use crate::config::ClusterConfig;
use crate::faults::{FaultPlan, JobAborted};
use crate::runner::{run_job, run_job_with_faults, JobResult, JobSpec};
use crate::stats::{JobStats, WorkflowStats};

/// A sequence of MapReduce jobs sharing one cluster, with accumulated
/// statistics.
///
/// ```
/// use dash_mapreduce::{ClusterConfig, JobSpec, Workflow};
///
/// let mut wf = Workflow::new("demo", ClusterConfig::default());
/// let docs = vec!["a b".to_string(), "b c".to_string()];
/// let counts: Vec<(String, u64)> = wf.run(
///     JobSpec::new("count").label("Cnt"),
///     &docs,
///     |d, emit| {
///         for w in d.split_whitespace() {
///             emit(w.to_string(), 1u64);
///         }
///     },
///     |w, vs, emit| emit((w.clone(), vs.iter().sum())),
/// );
/// assert_eq!(counts.iter().filter(|(w, _)| w == "b").count(), 1);
/// assert_eq!(wf.stats().jobs.len(), 1);
/// ```
#[derive(Debug)]
pub struct Workflow {
    name: String,
    cluster: ClusterConfig,
    stats: WorkflowStats,
}

impl Workflow {
    /// Creates an empty workflow bound to `cluster`.
    pub fn new(name: impl Into<String>, cluster: ClusterConfig) -> Self {
        Workflow {
            name: name.into(),
            cluster,
            stats: WorkflowStats::new(),
        }
    }

    /// The workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cluster configuration jobs run on.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Runs a job, records its stats, and returns its output.
    pub fn run<I, K, V, O, M, R>(
        &mut self,
        spec: JobSpec<K, V>,
        inputs: &[I],
        mapper: M,
        reducer: R,
    ) -> Vec<O>
    where
        I: Sync + ByteSized,
        K: Ord + Hash + Clone + Send + ByteSized,
        V: Send + ByteSized,
        O: Send + ByteSized,
        M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
        R: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
    {
        let JobResult { output, stats } = run_job(&self.cluster, spec, inputs, mapper, reducer);
        self.stats.push(stats);
        output
    }

    /// [`Workflow::run`] under a [`FaultPlan`]: scheduled task attempts
    /// fail and are retried, every attempt is charged by the cost model,
    /// and the recorded stats carry the inflated attempt counts.
    ///
    /// # Errors
    ///
    /// Returns [`JobAborted`] when some task exhausts its attempts; no
    /// stats are recorded for an aborted job.
    pub fn run_with_faults<I, K, V, O, M, R>(
        &mut self,
        spec: JobSpec<K, V>,
        inputs: &[I],
        mapper: M,
        reducer: R,
        plan: &FaultPlan,
    ) -> Result<Vec<O>, JobAborted>
    where
        I: Sync + ByteSized,
        K: Ord + Hash + Clone + Send + ByteSized,
        V: Send + ByteSized,
        O: Send + ByteSized,
        M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
        R: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
    {
        let JobResult { output, stats } =
            run_job_with_faults(&self.cluster, spec, inputs, mapper, reducer, plan)?;
        self.stats.push(stats);
        Ok(output)
    }

    /// Records stats for work done outside `run` (e.g. a job executed via
    /// [`run_job`] directly).
    pub fn record(&mut self, stats: JobStats) {
        self.stats.push(stats);
    }

    /// Accumulated statistics so far.
    pub fn stats(&self) -> &WorkflowStats {
        &self.stats
    }

    /// Consumes the workflow, returning its statistics.
    pub fn into_stats(self) -> WorkflowStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_jobs_accumulate_stats() {
        let mut wf = Workflow::new("two-step", ClusterConfig::default());
        let docs = vec!["a b c".to_string(), "a a".to_string()];
        let counts: Vec<(String, u64)> = wf.run(
            JobSpec::new("count").label("P1"),
            &docs,
            |d: &String, emit| {
                for w in d.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |w: &String, vs: Vec<u64>, emit| emit((w.clone(), vs.iter().sum())),
        );
        // Second job consumes the first job's output: total occurrences.
        let totals: Vec<(String, u64)> = wf.run(
            JobSpec::new("total").label("P2"),
            &counts,
            |(_, n): &(String, u64), emit| emit("total".to_string(), *n),
            |k: &String, vs: Vec<u64>, emit| emit((k.clone(), vs.iter().sum())),
        );
        assert_eq!(totals[0].1, 5);
        assert_eq!(wf.stats().jobs.len(), 2);
        assert_eq!(wf.stats().label_breakdown().len(), 2);
        let total = wf.into_stats();
        assert!(total.sim_total_secs() > 0.0);
    }

    #[test]
    fn faulted_run_records_inflated_attempts() {
        let mut wf = Workflow::new("chaos", ClusterConfig::default());
        let docs = vec!["a b".to_string(), "b c".to_string()];
        let mapper = |d: &String, emit: &mut dyn FnMut(String, u64)| {
            for w in d.split_whitespace() {
                emit(w.to_string(), 1u64);
            }
        };
        let reducer = |w: &String, vs: Vec<u64>, emit: &mut dyn FnMut((String, u64))| {
            emit((w.clone(), vs.iter().sum()))
        };
        let clean: Vec<(String, u64)> = wf.run(JobSpec::new("clean"), &docs, mapper, reducer);
        let plan = FaultPlan::new().fail_map(0, 0).fail_reduce(0, 0);
        let chaotic = wf
            .run_with_faults(JobSpec::new("chaotic"), &docs, mapper, reducer, &plan)
            .expect("retries recover");
        assert_eq!(clean, chaotic);
        assert_eq!(wf.stats().jobs.len(), 2);
        let [clean_stats, chaos_stats] = &wf.stats().jobs[..] else {
            panic!("two jobs recorded");
        };
        assert!(chaos_stats.map_task_attempts > clean_stats.map_task_attempts);
        assert!(chaos_stats.sim_total_secs() > clean_stats.sim_total_secs());

        // An exhausted plan aborts and records nothing.
        let mut lethal = FaultPlan::new();
        for a in 0..lethal.max_attempts {
            lethal = lethal.fail_reduce(0, a);
        }
        let err = wf
            .run_with_faults(JobSpec::new("lethal"), &docs, mapper, reducer, &lethal)
            .expect_err("task exhausts attempts");
        assert_eq!(err.phase, "reduce");
        assert_eq!(wf.stats().jobs.len(), 2);
    }
}
