//! End-to-end integration: servlet source → analysis → crawl → index →
//! top-k search → URL → re-executed db-page, across crates.

use dash::core::{CrawlAlgorithm, DashConfig, DashEngine, SearchRequest};
use dash::relation::Value;
use dash::tpch::{generate, Scale, TpchConfig};
use dash::webapp::{fooddb, QueryString};

/// Example 1 + Example 7 as one pipeline: the URLs Dash suggests
/// regenerate pages that really contain the queried keyword.
#[test]
fn suggested_urls_materialize_relevant_pages() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();

    for keyword in ["burger", "fries", "coffee", "thai", "experts"] {
        let hits = engine.search(&SearchRequest::new(&[keyword]).k(3).min_size(10));
        assert!(!hits.is_empty(), "no hits for {keyword}");
        for hit in hits {
            let qs = QueryString::parse(&hit.query_string).unwrap();
            let page = app.execute(&db, &qs).unwrap();
            assert!(
                page.keywords().iter().any(|w| w == keyword),
                "page {} does not contain {keyword}",
                hit.url
            );
            assert!(!page.is_empty(), "Dash never suggests valueless pages");
        }
    }
}

/// The assembled page size equals the real page's keyword count: the
/// fragment statistics are faithful to what the application generates.
#[test]
fn assembled_sizes_match_real_pages() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
    for hit in engine.search(&SearchRequest::new(&["burger"]).k(5).min_size(20)) {
        let qs = QueryString::parse(&hit.query_string).unwrap();
        let page = app.execute(&db, &qs).unwrap();
        assert_eq!(
            page.keywords().len() as u64,
            hit.size,
            "size mismatch at {}",
            hit.url
        );
    }
}

/// The full pipeline on TPC-H Q1 with both crawl algorithms.
#[test]
fn tpch_q1_pipeline_both_algorithms() {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 100;
    config.base_parts = 130;
    let db = generate(&config);
    let app = dash::tpch::q1_application(&db).unwrap();

    for algorithm in [CrawlAlgorithm::Stepwise, CrawlAlgorithm::Integrated] {
        let engine = DashEngine::build(
            &app,
            &db,
            &DashConfig {
                algorithm,
                ..DashConfig::default()
            },
        )
        .unwrap();
        assert!(engine.fragment_count() > 50);
        // Region names are hot keywords: every customer row carries one.
        let hits = engine.search(&SearchRequest::new(&["asia"]).k(5).min_size(100));
        assert!(!hits.is_empty());
        for hit in &hits {
            let qs = QueryString::parse(&hit.query_string).unwrap();
            let page = app.execute(&db, &qs).unwrap();
            assert!(page.keywords().iter().any(|w| w == "asia"));
        }
    }
}

/// Db-pages from different equality groups never merge (Figure 9: the
/// Thai node is disconnected from the American chain).
#[test]
fn pages_never_cross_equality_groups() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
    let hits = engine.search(&SearchRequest::new(&["burger"]).k(10).min_size(10_000));
    for hit in hits {
        let cuisines: std::collections::HashSet<&Value> =
            hit.fragment_ids.iter().map(|id| &id.values()[0]).collect();
        assert_eq!(cuisines.len(), 1, "page {} mixes cuisines", hit.url);
    }
}

/// Keywords that exist in the database but in no fragment of this
/// application (e.g. a customer name of a customer who never commented)
/// return no results rather than fabricated URLs.
#[test]
fn unreachable_keywords_return_nothing() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
    // "Ben" (uid 120) never wrote a comment, so he appears in no db-page.
    assert!(engine
        .search(&SearchRequest::new(&["ben"]).k(5).min_size(1))
        .is_empty());
}
