//! The ingest-equivalence test tier: engines built by the distributed
//! mapreduce workflow ([`distributed_build`]) must be **byte-identical**
//! to direct builds over the same fragments — same arena image, same
//! `SearchHit` lists as a fresh [`DashEngine`] — at shard counts
//! {1, 4}, and the guarantee must survive the two things a cluster
//! build actually faces:
//!
//! * **worker faults** — task attempts failing mid-job under a
//!   [`FaultPlan`] (retried by the runner, charged by the cost model)
//!   must not change a single output byte;
//! * **driver death** — a workflow killed between jobs must resume
//!   from its spilled intermediates (partition plan, per-shard dumps)
//!   and finish with the same bytes a never-killed run produces, while
//!   stale spill artifacts (different corpus or shard count) are
//!   ignored rather than trusted.
//!
//! Three layers of evidence: golden datasets (fooddb, TPC-H Q2-shaped
//! synthetic corpora), property tests over random corpora and
//! requests, and explicit kill-and-restart / fault-chaos scenarios.
//! When `DASH_SHARDS` is set (the CI matrix), that count joins every
//! golden comparison.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use dash::core::{
    distributed_build, env_shards, DashEngine, Fragment, IngestConfig, IngestSource, SearchRequest,
    ShardedEngine,
};
use dash::mapreduce::{FaultPlan, WorkflowStats};
use dash::webapp::{fooddb, WebApplication};
use dash_bench::scale::ScaleCorpus;
use dash_tpch::{generate, Scale, TpchConfig};

/// A self-deleting scratch directory (std only — no tempfile crate):
/// unique per (process, instantiation), removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("dash-ingest-{tag}-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&path).expect("scratch dir creates");
        TempDir(path)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The application shape `ScaleCorpus` fragments mimic: TPC-H Q2.
fn q2_app() -> WebApplication {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 50;
    config.base_parts = 65;
    let db = generate(&config);
    dash_tpch::q2_application(&db).expect("Q2 analyzes")
}

fn corpus(fragments: usize, groups: usize, seed: u64) -> Vec<Fragment> {
    let corpus = ScaleCorpus {
        fragments,
        groups,
        vocab: 300,
        seed,
        ..ScaleCorpus::default()
    };
    corpus.shard_batches(1).flatten().collect()
}

/// Shard counts every golden scenario runs at: 1, 4, plus the CI
/// matrix's `DASH_SHARDS` when set.
fn shard_axis() -> Vec<usize> {
    let mut counts = vec![1usize, 4];
    if let Some(n) = env_shards() {
        if !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

fn direct(app: &WebApplication, fragments: &[Fragment], shards: usize) -> ShardedEngine {
    ShardedEngine::builder(app.clone())
        .shards(shards)
        .source(IngestSource::Fragments(fragments))
        .build()
        .expect("direct build")
}

fn via_workflow(
    app: &WebApplication,
    fragments: &[Fragment],
    config: &IngestConfig,
) -> ShardedEngine {
    let output = distributed_build(app, fragments, config).expect("workflow build");
    ShardedEngine::builder(app.clone())
        .source(IngestSource::Distributed(output))
        .build()
        .expect("workflow engine assembles")
}

fn image_of(engine: &ShardedEngine) -> Vec<u8> {
    let mut bytes = Vec::new();
    engine.write_image(&mut bytes).expect("image dumps");
    bytes
}

/// Hot/warm/cold terms, pairs and a guaranteed miss over several
/// `k`/`s` settings.
fn battery() -> Vec<SearchRequest> {
    let mut requests = Vec::new();
    for kw in ["kw000000", "kw000003", "kw000042", "kw000299"] {
        for s in [1u64, 10, 50] {
            requests.push(SearchRequest::new(&[kw]).k(6).min_size(s));
        }
    }
    requests.push(
        SearchRequest::new(&["kw000000", "kw000007"])
            .k(10)
            .min_size(1),
    );
    requests.push(SearchRequest::new(&["zzzmissing"]).k(4).min_size(1));
    requests
}

/// A fault plan that kills one task on every allowed attempt — the
/// workflow must abort, never loop.
fn lethal_reduce(task: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for attempt in 0..plan.max_attempts {
        plan = plan.fail_reduce(task, attempt);
    }
    plan
}

// ---------------------------------------------------------------------
// Golden: byte-identity of workflow and direct builds
// ---------------------------------------------------------------------

#[test]
fn golden_workflow_image_is_byte_identical_to_direct_build() {
    let app = q2_app();
    let fragments = corpus(600, 12, 0x1D9E);
    let fresh =
        DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).expect("fresh");
    let requests = battery();
    let mut any_hits = false;
    for shards in shard_axis() {
        let reference = direct(&app, &fragments, shards);
        let config = IngestConfig {
            shards,
            ..IngestConfig::default()
        };
        let built = via_workflow(&app, &fragments, &config);
        assert_eq!(built.shard_sizes(), reference.shard_sizes());
        assert_eq!(
            image_of(&built),
            image_of(&reference),
            "shards={shards}: workflow image must match direct image bit for bit"
        );
        for request in &requests {
            let expected = fresh.search(request);
            any_hits |= !expected.is_empty();
            assert_eq!(
                built.search(request),
                expected,
                "shards={shards} {:?}",
                request.keywords
            );
        }
    }
    assert!(any_hits, "battery must exercise non-empty results");
}

#[test]
fn golden_fooddb_workflow_matches_direct_build() {
    let app = fooddb::search_application().unwrap();
    let db = fooddb::database();
    let crawl = dash::core::crawl::run(&app, &db, &Default::default(), Default::default()).unwrap();
    for shards in shard_axis() {
        let reference = direct(&app, &crawl.fragments, shards);
        let config = IngestConfig {
            shards,
            ..IngestConfig::default()
        };
        let built = via_workflow(&app, &crawl.fragments, &config);
        assert_eq!(image_of(&built), image_of(&reference), "shards={shards}");
    }
}

// ---------------------------------------------------------------------
// Faults: injected task failures never change output bytes
// ---------------------------------------------------------------------

#[test]
fn fault_chaos_is_byte_invisible() {
    let app = q2_app();
    let fragments = corpus(400, 8, 0xC0DE);
    for shards in shard_axis() {
        let reference = image_of(&direct(&app, &fragments, shards));
        // Escalating chaos: single map fault, single reduce fault,
        // multi-task multi-attempt storms across both jobs.
        let plans = [
            FaultPlan::new().fail_map(0, 0),
            FaultPlan::new().fail_reduce(0, 0),
            FaultPlan::new()
                .fail_map(0, 0)
                .fail_map(1, 0)
                .fail_map(0, 1)
                .fail_reduce(0, 0),
            FaultPlan::new()
                .fail_map(2, 0)
                .fail_reduce(0, 0)
                .fail_reduce(1, 0)
                .fail_reduce(0, 1)
                .fail_reduce(1, 1),
        ];
        for (i, faults) in plans.into_iter().enumerate() {
            let config = IngestConfig {
                shards,
                faults,
                ..IngestConfig::default()
            };
            let output = distributed_build(&app, &fragments, &config).expect("survives faults");
            let attempts = output.report.map_attempts + output.report.reduce_attempts;
            let built = ShardedEngine::builder(app.clone())
                .source(IngestSource::Distributed(output))
                .build()
                .unwrap();
            assert_eq!(
                image_of(&built),
                reference,
                "shards={shards} fault plan #{i} changed output bytes"
            );
            assert!(attempts > 0, "attempts are metered");
        }
    }
}

// ---------------------------------------------------------------------
// Kill-and-restart: spilled intermediates resume, stale ones don't
// ---------------------------------------------------------------------

#[test]
fn killed_workflow_resumes_from_spilled_plan_byte_identically() {
    let app = q2_app();
    let fragments = corpus(300, 6, 0xDEAD);
    let reference = image_of(&direct(&app, &fragments, 4));
    let dir = TempDir::new("restart");

    // Run 1: job 1 succeeds (plan spilled), job 2 dies on every
    // attempt — the driver aborts, simulating a mid-workflow kill.
    // On a single-node cluster job 1 runs 2 reduce tasks while job 2
    // runs `shards` (4), so a lethal fault on reduce task 3 is only
    // ever scheduled by job 2: the kill lands *between* the stages.
    let cluster = dash::mapreduce::ClusterConfig::single_node();
    let killed = IngestConfig {
        cluster: cluster.clone(),
        shards: 4,
        faults: lethal_reduce(3),
        spill_dir: Some(dir.path().to_path_buf()),
    };
    let err = distributed_build(&app, &fragments, &killed).expect_err("job 2 must die");
    assert!(err.to_string().contains("ingest shard-build"), "got: {err}");

    // Run 2 (the restart): the spilled plan skips job 1; only the
    // build job runs, and the bytes match a never-killed build.
    let resume = IngestConfig {
        cluster,
        shards: 4,
        faults: FaultPlan::new(),
        spill_dir: Some(dir.path().to_path_buf()),
    };
    let output = distributed_build(&app, &fragments, &resume).expect("restart finishes");
    assert!(output.report.resumed_plan, "plan spill must be picked up");
    assert!(!output.report.resumed_dumps);
    assert_eq!(output.report.jobs_run, 1, "only job 2 re-runs");
    let built = ShardedEngine::builder(app.clone())
        .source(IngestSource::Distributed(output))
        .build()
        .unwrap();
    assert_eq!(image_of(&built), reference);

    // Run 3: the finished dumps skip both jobs outright.
    let output = distributed_build(&app, &fragments, &resume).expect("warm resume");
    assert!(output.report.resumed_dumps);
    assert_eq!(output.report.jobs_run, 0);
    assert!(output.stats.jobs.is_empty(), "nothing ran, nothing metered");
    let built = ShardedEngine::builder(app.clone())
        .source(IngestSource::Distributed(output))
        .build()
        .unwrap();
    assert_eq!(image_of(&built), reference);
}

#[test]
fn stale_spill_artifacts_are_ignored_not_trusted() {
    let app = q2_app();
    let dir = TempDir::new("stale");
    let old = corpus(200, 5, 0xAAAA);
    let spilled = IngestConfig {
        shards: 2,
        spill_dir: Some(dir.path().to_path_buf()),
        ..IngestConfig::default()
    };
    distributed_build(&app, &old, &spilled).expect("first build spills");

    // Same directory, different corpus: the fingerprint mismatch must
    // force a full re-run, and the result must match the new corpus.
    let new = corpus(200, 5, 0xBBBB);
    let output = distributed_build(&app, &new, &spilled).expect("re-runs from scratch");
    assert!(!output.report.resumed_plan && !output.report.resumed_dumps);
    assert_eq!(output.report.jobs_run, 2);
    let built = ShardedEngine::builder(app.clone())
        .source(IngestSource::Distributed(output))
        .build()
        .unwrap();
    assert_eq!(image_of(&built), image_of(&direct(&app, &new, 2)));

    // Same corpus, different shard count: also a different build.
    let output = distributed_build(
        &app,
        &new,
        &IngestConfig {
            shards: 4,
            spill_dir: Some(dir.path().to_path_buf()),
            ..IngestConfig::default()
        },
    )
    .expect("shard-count change re-runs");
    assert_eq!(output.report.jobs_run, 2);
    let built = ShardedEngine::builder(app.clone())
        .source(IngestSource::Distributed(output))
        .build()
        .unwrap();
    assert_eq!(image_of(&built), image_of(&direct(&app, &new, 4)));
}

#[test]
fn empty_corpus_round_trips_through_the_workflow() {
    let app = q2_app();
    let dir = TempDir::new("empty");
    let config = IngestConfig {
        shards: 3,
        spill_dir: Some(dir.path().to_path_buf()),
        ..IngestConfig::default()
    };
    let built = via_workflow(&app, &[], &config);
    let reference = direct(&app, &[], 3);
    assert_eq!(image_of(&built), image_of(&reference));
    assert!(built
        .search(&SearchRequest::new(&["anything"]).k(3).min_size(1))
        .is_empty());
    // And the spilled (empty) dumps resume cleanly.
    let output = distributed_build(&app, &[], &config).expect("empty resume");
    assert!(output.report.resumed_dumps);
}

// ---------------------------------------------------------------------
// Property tests: random corpora, faults and requests
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random corpus shapes and requests, the workflow-built
    /// engine answers byte-identically to a fresh single-heap build,
    /// at shards {1, 4}, with and without injected faults.
    #[test]
    fn workflow_matches_fresh_engine_on_random_corpora(
        fragments in 30usize..200,
        groups in 1usize..10,
        seed in any::<u64>(),
        ranks in prop::collection::vec(0usize..300, 1..4),
        k in 1usize..10,
        s in prop::sample::select(vec![1u64, 5, 25]),
        fault_map in any::<bool>(),
        fault_reduce in any::<bool>(),
    ) {
        let app = q2_app();
        let corpus = corpus(fragments, groups, seed);
        let words: Vec<String> = ranks.iter().map(|r| format!("kw{r:06}")).collect();
        let keywords: Vec<&str> = words.iter().map(String::as_str).collect();
        let request = SearchRequest::new(&keywords).k(k).min_size(s);
        let fresh =
            DashEngine::from_fragments(app.clone(), &corpus, WorkflowStats::new()).unwrap();
        let expected = fresh.search(&request);
        for shards in [1usize, 4] {
            let mut faults = FaultPlan::new();
            if fault_map {
                faults = faults.fail_map(0, 0);
            }
            if fault_reduce {
                faults = faults.fail_reduce(0, 0);
            }
            let config = IngestConfig { shards, faults, ..IngestConfig::default() };
            let built = via_workflow(&app, &corpus, &config);
            prop_assert_eq!(
                image_of(&built),
                image_of(&direct(&app, &corpus, shards)),
                "shards={} images diverge", shards
            );
            prop_assert_eq!(built.search(&request), expected.clone());
        }
    }
}
