//! The sharded-maintenance test tier: after ANY sequence of
//! incremental updates, `ShardedEngine` search results must be
//! **byte-identical** to a `DashEngine` freshly rebuilt over the
//! mutated fragment set — for every shard count. This is the contract
//! of the unified delta write path: deltas route to their owning shard
//! (per-shard work only, no rebuild), global group ranks and IDF
//! refresh incrementally, and the trace merge stays exact even as the
//! shard balance drifts away from what a fresh partition would choose.
//!
//! Three layers of evidence:
//!
//! * golden sequences — the fooddb mutation scenarios of
//!   `tests/maintenance.rs` replayed against sharded engines at shard
//!   counts {1, 2, 4, 8}, with searches interleaved between mutations
//!   and run concurrently on the shard worker pool;
//! * property tests — random initial datasets and random
//!   insert/replace/remove delta sequences, applied identically to all
//!   shard counts and compared against a from-scratch rebuild;
//! * round-trip composition — maintenance after a per-shard dump/load
//!   (see `tests/persist_roundtrip.rs` for the dump itself).

use std::collections::BTreeMap;

use proptest::prelude::*;

use dash::core::{
    DashConfig, DashEngine, Fragment, FragmentId, IndexDelta, IngestSource, SearchRequest,
    ShardedEngine,
};
use dash::mapreduce::WorkflowStats;
use dash::relation::{Database, Record, Value};
use dash::webapp::fooddb;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn rebuild_single(db: &Database) -> DashEngine {
    let app = fooddb::search_application().unwrap();
    DashEngine::build(&app, db, &DashConfig::default()).unwrap()
}

/// The request battery every comparison runs: hot/cold keywords, size
/// thresholds spanning no-expansion to whole-group, multi-keyword.
fn battery() -> Vec<SearchRequest> {
    let mut requests = Vec::new();
    for kw in ["burger", "fries", "coffee", "thai", "taco", "pho", "nice"] {
        for s in [1u64, 20, 60] {
            requests.push(SearchRequest::new(&[kw]).k(6).min_size(s));
        }
    }
    requests.push(SearchRequest::new(&["burger", "taco"]).k(8).min_size(10));
    requests.push(SearchRequest::new(&["zzzmissing"]).k(3).min_size(1));
    requests
}

/// Sequential + batched + concurrent search comparison: the sharded
/// engine must agree with the rebuilt single engine request for
/// request, including under concurrent worker-pool traffic.
fn assert_equivalent(sharded: &ShardedEngine, rebuilt: &DashEngine, context: &str) {
    assert_eq!(
        sharded.fragment_count(),
        rebuilt.fragment_count(),
        "{context}: fragment counts"
    );
    let requests = battery();
    let expected: Vec<_> = requests.iter().map(|r| rebuilt.search(r)).collect();
    for (request, expected) in requests.iter().zip(&expected) {
        assert_eq!(
            &sharded.search(request),
            expected,
            "{context}: keywords={:?} k={} s={}",
            request.keywords,
            request.k,
            request.min_size
        );
    }
    assert_eq!(
        sharded.search_many(&requests),
        expected,
        "{context}: batched"
    );
    // Concurrent traffic on the persistent worker pool: four client
    // threads issue the whole battery at once.
    std::thread::scope(|scope| {
        for t in 0..4 {
            let requests = &requests;
            let expected = &expected;
            scope.spawn(move || {
                for (request, expected) in requests.iter().zip(expected) {
                    assert_eq!(
                        &sharded.search(request),
                        expected,
                        "{context}: concurrent client {t} keywords={:?}",
                        request.keywords
                    );
                }
            });
        }
    });
}

fn restaurant(rid: i64, name: &str, cuisine: &str, budget: i64) -> Record {
    Record::new(vec![
        Value::Int(rid),
        Value::str(name),
        Value::str(cuisine),
        Value::Int(budget),
        Value::str("4.0"),
    ])
}

fn comment(cid: i64, rid: i64, uid: i64, text: &str) -> Record {
    Record::new(vec![
        Value::Int(cid),
        Value::Int(rid),
        Value::Int(uid),
        Value::str(text),
        Value::str("02/12"),
    ])
}

#[test]
fn golden_interleaved_mutations_match_rebuild_for_all_shard_counts() {
    for shards in SHARD_COUNTS {
        let mut db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let mut engine = ShardedEngine::builder(app.clone())
            .shards(shards)
            .source(IngestSource::Crawl {
                db: &db,
                config: &DashConfig::default(),
            })
            .build()
            .unwrap();
        let context = |step: &str| format!("shards={shards}: {step}");

        // 1. Insert a chain of Mexican restaurants spanning budgets
        //    5..9 — a brand-new equality group grows inside one shard's
        //    key range, with searches after every single insert.
        for (i, budget) in (5..10).enumerate() {
            let r = restaurant(100 + i as i64, "Taco Tower", "Mexican", budget);
            db.table_mut("restaurant")
                .unwrap()
                .insert(r.clone())
                .unwrap();
            engine.apply_insert(&db, "restaurant", &r).unwrap();
            let hits = engine.search(&SearchRequest::new(&["taco"]).k(1).min_size(100));
            assert_eq!(hits.len(), 1, "{}", context("taco findable"));
            assert_eq!(hits[0].fragment_ids.len(), i + 1);
        }
        assert_equivalent(
            &engine,
            &rebuild_single(&db),
            &context("after mexican chain"),
        );

        // 2. Grow one fragment's content (comment insert).
        let c = comment(301, 102, 132, "Great taco pho fusion");
        db.table_mut("comment").unwrap().insert(c.clone()).unwrap();
        engine.apply_insert(&db, "comment", &c).unwrap();
        assert_equivalent(
            &engine,
            &rebuild_single(&db),
            &context("after comment insert"),
        );

        // 3. Delete the middle of the Mexican chain — the edge
        //    re-splices inside the owning shard only.
        let victim = db
            .table("restaurant")
            .unwrap()
            .iter()
            .find(|r| r.get(0) == Some(&Value::Int(102)))
            .cloned()
            .unwrap();
        db.table_mut("comment")
            .unwrap()
            .delete_where(|r| r.get(1) == Some(&Value::Int(102)));
        engine.apply_delete(&db, "comment", &c).unwrap();
        db.table_mut("restaurant")
            .unwrap()
            .delete_where(|r| r.get(0) == Some(&Value::Int(102)));
        engine.apply_delete(&db, "restaurant", &victim).unwrap();
        assert_equivalent(
            &engine,
            &rebuild_single(&db),
            &context("after middle delete"),
        );

        // 4. Delete an entire cuisine (Thai) — whole groups disappear
        //    from their shard; later shards' global ranks must slide.
        for rid in [5i64, 6] {
            let comments: Vec<Record> = db
                .table("comment")
                .unwrap()
                .iter()
                .filter(|r| r.get(1) == Some(&Value::Int(rid)))
                .cloned()
                .collect();
            for c in comments {
                db.table_mut("comment")
                    .unwrap()
                    .delete_where(|r| r.get(0) == c.get(0));
                engine.apply_delete(&db, "comment", &c).unwrap();
            }
            let r = db
                .table("restaurant")
                .unwrap()
                .iter()
                .find(|r| r.get(0) == Some(&Value::Int(rid)))
                .cloned()
                .unwrap();
            db.table_mut("restaurant")
                .unwrap()
                .delete_where(|rec| rec.get(0) == Some(&Value::Int(rid)));
            engine.apply_delete(&db, "restaurant", &r).unwrap();
        }
        assert_equivalent(
            &engine,
            &rebuild_single(&db),
            &context("after thai removal"),
        );
        assert!(engine
            .search(&SearchRequest::new(&["thai"]).k(3).min_size(1))
            .is_empty());
    }
}

#[test]
fn golden_budget_move_and_churn_match_rebuild() {
    for shards in SHARD_COUNTS {
        let mut db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let mut engine = ShardedEngine::builder(app.clone())
            .shards(shards)
            .source(IngestSource::Crawl {
                db: &db,
                config: &DashConfig::default(),
            })
            .build()
            .unwrap();

        // A budget change moves a restaurant between fragments of the
        // same group (delete + insert).
        let old = db
            .table("restaurant")
            .unwrap()
            .iter()
            .find(|r| r.get(0) == Some(&Value::Int(1)))
            .cloned()
            .unwrap();
        db.table_mut("restaurant")
            .unwrap()
            .delete_where(|r| r.get(0) == Some(&Value::Int(1)));
        engine.apply_delete(&db, "restaurant", &old).unwrap();
        let new = restaurant(1, "Burger Queen", "American", 11);
        db.table_mut("restaurant")
            .unwrap()
            .insert(new.clone())
            .unwrap();
        engine.apply_insert(&db, "restaurant", &new).unwrap();
        assert_equivalent(
            &engine,
            &rebuild_single(&db),
            &format!("shards={shards}: after budget move"),
        );
        let hits = engine.search(&SearchRequest::new(&["experts"]).k(1).min_size(1));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].url.contains("l=11&u=11"), "got {}", hits[0].url);

        // Repeated insert/delete churn of one fragment is stable.
        let r = restaurant(200, "Pho Palace", "Vietnamese", 9);
        for round in 0..3 {
            db.table_mut("restaurant")
                .unwrap()
                .insert(r.clone())
                .unwrap();
            engine.apply_insert(&db, "restaurant", &r).unwrap();
            assert_eq!(
                engine
                    .search(&SearchRequest::new(&["pho"]).k(5).min_size(1))
                    .len(),
                1,
                "shards={shards} round={round}"
            );
            db.table_mut("restaurant")
                .unwrap()
                .delete_where(|rec| rec.get(0) == Some(&Value::Int(200)));
            engine.apply_delete(&db, "restaurant", &r).unwrap();
            assert!(engine
                .search(&SearchRequest::new(&["pho"]).k(5).min_size(1))
                .is_empty());
        }
        assert_equivalent(
            &engine,
            &rebuild_single(&db),
            &format!("shards={shards}: after churn"),
        );
    }
}

#[test]
fn maintenance_composes_with_per_shard_roundtrip() {
    // Mutate → dump per shard → reload (no re-partitioning) → mutate
    // again: the reloaded engine keeps accepting deltas and stays
    // byte-identical to a rebuild.
    let mut db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let mut engine = ShardedEngine::builder(app.clone())
        .shards(4)
        .source(IngestSource::Crawl {
            db: &db,
            config: &DashConfig::default(),
        })
        .build()
        .unwrap();

    let r = restaurant(150, "Quesadilla Queen", "Mexican", 14);
    db.table_mut("restaurant")
        .unwrap()
        .insert(r.clone())
        .unwrap();
    engine.apply_insert(&db, "restaurant", &r).unwrap();

    let dumped = engine.dump_shards();
    let mut reloaded = ShardedEngine::builder(app.clone())
        .source(IngestSource::ShardDumps(&dumped))
        .build()
        .unwrap();
    assert_eq!(reloaded.shard_sizes(), engine.shard_sizes());

    let r2 = restaurant(151, "Churro Chapel", "Mexican", 16);
    db.table_mut("restaurant")
        .unwrap()
        .insert(r2.clone())
        .unwrap();
    engine.apply_insert(&db, "restaurant", &r2).unwrap();
    reloaded.apply_insert(&db, "restaurant", &r2).unwrap();

    let rebuilt = rebuild_single(&db);
    assert_equivalent(&engine, &rebuilt, "original after roundtrip-era mutations");
    assert_equivalent(&reloaded, &rebuilt, "reloaded after mutations");
}

// ---------------------------------------------------------------------
// Property tests: random datasets, random delta sequences.
// ---------------------------------------------------------------------

const EQ_KEYS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
const VOCAB: [&str; 8] = [
    "burger", "fries", "noodle", "spicy", "fresh", "crispy", "sweet", "salty",
];

/// One generated fragment row.
#[derive(Debug, Clone)]
struct GenFragment {
    eq: usize,
    range: i64,
    words: Vec<(usize, u64)>,
}

impl GenFragment {
    fn id(&self) -> FragmentId {
        FragmentId::new(vec![Value::str(EQ_KEYS[self.eq]), Value::Int(self.range)])
    }

    fn materialize(&self) -> Fragment {
        let mut occ: BTreeMap<String, u64> = BTreeMap::new();
        for &(w, n) in &self.words {
            *occ.entry(VOCAB[w].to_string()).or_insert(0) += n;
        }
        Fragment::new(self.id(), occ, 1)
    }
}

/// One maintenance operation against the engines and the ground truth.
#[derive(Debug, Clone)]
enum Op {
    /// Insert (or replace) a fragment.
    Upsert(GenFragment),
    /// Remove the fragment with this (eq, range) coordinate, if live.
    Remove(usize, i64),
}

fn fragment_strategy() -> impl Strategy<Value = GenFragment> {
    (
        0..EQ_KEYS.len(),
        0i64..12,
        prop::collection::vec((0usize..VOCAB.len(), 1u64..5), 1..4),
    )
        .prop_map(|(eq, range, words)| GenFragment { eq, range, words })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The stand-in's `prop_oneof!` is uniform; repeating the upsert arm
    // biases the mix toward insert/replace ops.
    prop_oneof![
        fragment_strategy().prop_map(Op::Upsert),
        fragment_strategy().prop_map(Op::Upsert),
        fragment_strategy().prop_map(Op::Upsert),
        (0..EQ_KEYS.len(), 0i64..12).prop_map(|(eq, range)| Op::Remove(eq, range)),
    ]
}

/// First occurrence of an identifier wins, like a crawl's distinct
/// output.
fn materialize(rows: &[GenFragment]) -> Vec<Fragment> {
    let mut seen = std::collections::HashSet::new();
    let mut fragments = Vec::new();
    for row in rows {
        if seen.insert(row.id()) {
            fragments.push(row.materialize());
        }
    }
    fragments
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    /// The tier's core contract: random initial data, a random delta
    /// sequence applied incrementally at every shard count, searches
    /// byte-identical to a from-scratch rebuild over the final set.
    #[test]
    fn update_then_search_matches_rebuild_then_search(
        rows in prop::collection::vec(fragment_strategy(), 1..30),
        ops in prop::collection::vec(op_strategy(), 1..12),
        query in prop::collection::vec(0usize..VOCAB.len(), 1..4),
        k in 1usize..10,
        s in prop::sample::select(vec![1u64, 3, 10, 50]),
    ) {
        let app = fooddb::search_application().unwrap();
        let initial = materialize(&rows);
        let mut truth: Vec<Fragment> = initial.clone();
        let mut engines: Vec<ShardedEngine> = SHARD_COUNTS
            .iter()
            .map(|&n| {
                ShardedEngine::builder(app.clone()).shards(n).source(IngestSource::Fragments(&initial)).build()
                    .unwrap()
            })
            .collect();
        for op in &ops {
            let delta = match op {
                Op::Upsert(row) => {
                    let fragment = row.materialize();
                    truth.retain(|f| f.id != fragment.id);
                    truth.push(fragment.clone());
                    IndexDelta::new(vec![row.id()], vec![fragment])
                }
                Op::Remove(eq, range) => {
                    let id =
                        FragmentId::new(vec![Value::str(EQ_KEYS[*eq]), Value::Int(*range)]);
                    truth.retain(|f| f.id != id);
                    IndexDelta::removing(vec![id])
                }
            };
            for engine in &mut engines {
                engine.apply_delta(delta.clone());
            }
        }
        let rebuilt =
            DashEngine::from_fragments(app.clone(), &truth, WorkflowStats::new()).unwrap();
        let keywords: Vec<&str> = query.iter().map(|&w| VOCAB[w]).collect();
        let request = SearchRequest::new(&keywords).k(k).min_size(s);
        let expected = rebuilt.search(&request);
        for (engine, &shards) in engines.iter().zip(&SHARD_COUNTS) {
            prop_assert_eq!(engine.fragment_count(), truth.len(), "shards={}", shards);
            prop_assert_eq!(
                engine.search(&request),
                expected.clone(),
                "shards={} truth={} ops={} keywords={:?} k={} s={}",
                shards,
                truth.len(),
                ops.len(),
                &keywords,
                k,
                s
            );
        }
    }

    /// Interleaving searches *between* delta applications never
    /// perturbs later results (scratch pools, worker state and offsets
    /// carry no stale cross-request state).
    #[test]
    fn interleaved_search_and_update_is_stateless(
        rows in prop::collection::vec(fragment_strategy(), 5..25),
        ops in prop::collection::vec(op_strategy(), 1..6),
        shards in prop::sample::select(vec![2usize, 4, 8]),
    ) {
        let app = fooddb::search_application().unwrap();
        let initial = materialize(&rows);
        let mut truth = initial.clone();
        let mut engine =
            ShardedEngine::builder(app.clone()).shards(shards).source(IngestSource::Fragments(&initial)).build()
                .unwrap();
        let request = SearchRequest::new(&["burger", "spicy"]).k(5).min_size(3);
        for op in &ops {
            let delta = match op {
                Op::Upsert(row) => {
                    let fragment = row.materialize();
                    truth.retain(|f| f.id != fragment.id);
                    truth.push(fragment.clone());
                    IndexDelta::new(vec![row.id()], vec![fragment])
                }
                Op::Remove(eq, range) => {
                    let id =
                        FragmentId::new(vec![Value::str(EQ_KEYS[*eq]), Value::Int(*range)]);
                    truth.retain(|f| f.id != id);
                    IndexDelta::removing(vec![id])
                }
            };
            engine.apply_delta(delta);
            // Search immediately after every delta, against a rebuild.
            let rebuilt =
                DashEngine::from_fragments(app.clone(), &truth, WorkflowStats::new()).unwrap();
            prop_assert_eq!(
                engine.search(&request),
                rebuilt.search(&request),
                "shards={} after {} fragments",
                shards,
                truth.len()
            );
        }
    }
}
