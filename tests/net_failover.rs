//! The failover tier: cluster-grade fault coverage above the net
//! equivalence bar. Every scenario here breaks something on purpose —
//! torn frames, dropped frames, a killed primary — and requires the
//! cluster to (a) never expose a half-applied state, (b) repair
//! itself through the cheapest path available (delta-log catch-up
//! before re-snapshot), and (c) keep every served hit list
//! **byte-identical** to a fresh `DashEngine::search` over the same
//! fragments once the dust settles.
//!
//! The fault injection hooks live on the primary's replication hub
//! ([`ReplicationHub::faults`]): one-shot mid-frame kills (torn
//! SNAPSHOT / torn DELTA), silent delta drops (epoch gaps the replica
//! must detect), and per-frame delays. The control-plane operations —
//! [`Replica::promote`], [`Replica::retarget`],
//! [`Upstream::retarget`] — are what an operator (or the routing
//! tier's supervisor) runs on a real failover; the chaos test at the
//! bottom drives the whole sequence under concurrent load.
//!
//! [`ReplicationHub::faults`]: dash::net::ReplicationHub::faults
//! [`Replica::promote`]: dash::net::Replica::promote
//! [`Replica::retarget`]: dash::net::Replica::retarget
//! [`Upstream::retarget`]: dash::net::Upstream::retarget

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dash::core::crawl::reference;
use dash::mapreduce::WorkflowStats;
use dash::net::json::hits_to_json;
use dash::net::{Router, RouterConfig, UpdateBody};
use dash::prelude::*;
use dash::webapp::fooddb;

const SYNC_TIMEOUT: Duration = Duration::from_secs(20);

fn app() -> WebApplication {
    fooddb::search_application().unwrap()
}

fn fresh_single(fragments: &[Fragment]) -> DashEngine {
    DashEngine::from_fragments(app(), fragments, WorkflowStats::new()).unwrap()
}

fn crawled_fragments() -> Vec<Fragment> {
    let db = fooddb::database();
    reference::fragments(&app(), &db).unwrap()
}

fn fragment(cuisine: &str, word: &str, n: u64) -> Fragment {
    Fragment::new(
        FragmentId::new(vec![Value::str(cuisine), Value::Int(7)]),
        [(word.to_string(), n)].into_iter().collect(),
        1,
    )
}

/// A primary serving stack on ephemeral ports with a custom serve
/// config: the `DashServer`, its HTTP front-end and replication hub.
fn primary_with(
    fragments: &[Fragment],
    serve: ServeConfig,
) -> (Arc<DashServer>, NetServer, ReplicationHub) {
    let server = Arc::new(DashServer::from_fragments(app(), fragments, serve).unwrap());
    let net = NetServer::serve_primary(
        Arc::clone(&server),
        fooddb::database(),
        TcpListener::bind("127.0.0.1:0").unwrap(),
        NetConfig::default(),
    )
    .unwrap();
    let hub = ReplicationHub::start(
        Arc::clone(&server),
        TcpListener::bind("127.0.0.1:0").unwrap(),
    )
    .unwrap();
    (server, net, hub)
}

fn primary(fragments: &[Fragment]) -> (Arc<DashServer>, NetServer, ReplicationHub) {
    primary_with(fragments, ServeConfig::default().shards(2))
}

/// Dumps a server's current fragments (the ground-truth input for a
/// fresh reference engine).
fn dump(server: &DashServer) -> Vec<Fragment> {
    server
        .snapshot()
        .engine
        .dump_shards()
        .into_iter()
        .flatten()
        .collect()
}

/// Every served node must answer the battery byte-identically to a
/// fresh single engine over `truth_fragments`.
fn assert_exact(
    truth_fragments: &[Fragment],
    serve: impl Fn(&SearchRequest) -> Vec<SearchHit>,
    context: &str,
) {
    let truth = fresh_single(truth_fragments);
    let mut requests: Vec<SearchRequest> = ["burger", "coffee", "herring", "larb", "zzzmissing"]
        .iter()
        .map(|kw| SearchRequest::new(&[*kw]).k(6).min_size(1))
        .collect();
    requests.push(SearchRequest::new(&["burger", "taco"]).k(8).min_size(10));
    for request in &requests {
        assert_eq!(
            serve(request),
            truth.search(request),
            "{context}: keywords={:?}",
            request.keywords
        );
    }
}

// ---------------------------------------------------------------------
// Delta-log catch-up
// ---------------------------------------------------------------------

#[test]
fn reconnect_within_the_delta_log_window_tails_instead_of_resnapshotting() {
    let base = crawled_fragments();
    let (server, _net, hub) = primary(&base);
    let replica = Arc::new(Replica::connect(
        hub.addr(),
        app(),
        ReplicaConfig::default(),
    ));
    assert!(replica.wait_ready(SYNC_TIMEOUT));
    assert_eq!(replica.bootstraps(), 1);

    // Cut the stream, then publish a burst the replica misses.
    hub.disconnect_all();
    assert!(replica.wait_connected(false, SYNC_TIMEOUT));
    for round in 1..=5u64 {
        server.publish(IndexDelta::adding(vec![fragment(
            &format!("Wave{round}"),
            "herring",
            round,
        )]));
    }
    assert_eq!(server.epoch(), 5);

    // The reconnect HELLO reports epoch 0, which is still inside the
    // default delta log — all five missed deltas replay as a tail; no
    // second SNAPSHOT frame is ever shipped.
    assert!(replica.wait_epoch(5, SYNC_TIMEOUT));
    assert_eq!(replica.bootstraps(), 1, "no snapshot frame on reconnect");
    assert!(replica.catchups() >= 1, "the hub answered with RESUME");
    assert_eq!(replica.deltas_applied(), 5);
    assert_exact(&dump(&server), |r| replica.search(r), "after tail catch-up");
}

#[test]
fn falling_off_the_log_tail_forces_a_full_rebootstrap() {
    let base = crawled_fragments();
    // A log of depth 2 cannot cover a 5-delta outage.
    let (server, _net, hub) = primary_with(&base, ServeConfig::default().shards(2).delta_log(2));
    let replica = Arc::new(Replica::connect(
        hub.addr(),
        app(),
        ReplicaConfig::default(),
    ));
    assert!(replica.wait_ready(SYNC_TIMEOUT));

    hub.disconnect_all();
    assert!(replica.wait_connected(false, SYNC_TIMEOUT));
    for round in 1..=5u64 {
        server.publish(IndexDelta::adding(vec![fragment(
            &format!("Wave{round}"),
            "herring",
            round,
        )]));
    }

    // Epoch 0 fell off the log (it only holds {4, 5} now): the hub
    // must answer with a fresh snapshot, never a gapped tail.
    assert!(replica.wait_epoch(5, SYNC_TIMEOUT));
    assert_eq!(replica.bootstraps(), 2, "off the log tail → re-snapshot");
    assert_eq!(replica.catchups(), 0);
    assert_exact(&dump(&server), |r| replica.search(r), "after re-bootstrap");
}

// ---------------------------------------------------------------------
// Torn transfers and dropped frames
// ---------------------------------------------------------------------

#[test]
fn torn_snapshot_frame_never_exposes_half_state() {
    let base = crawled_fragments();
    let (server, _net, hub) = primary(&base);
    server.publish(IndexDelta::adding(vec![fragment("Nordic", "herring", 3)]));

    // The first bootstrap attempt dies halfway through the SNAPSHOT
    // frame; the framing layer rejects the torn payload before any
    // engine state is built, so the replica simply retries.
    hub.faults().kill_mid_snapshot.store(true, Ordering::SeqCst);
    let replica = Arc::new(Replica::connect(
        hub.addr(),
        app(),
        ReplicaConfig::default(),
    ));
    assert!(replica.wait_epoch(1, SYNC_TIMEOUT), "second attempt lands");
    assert_eq!(
        replica.bootstraps(),
        1,
        "the torn attempt never counted as a bootstrap"
    );
    assert_exact(&dump(&server), |r| replica.search(r), "after torn snapshot");
}

#[test]
fn torn_delta_frame_is_invisible_until_the_retry_replays_it() {
    let base = crawled_fragments();
    let (server, _net, hub) = primary(&base);
    // Generous retry so the torn window is observable.
    let replica = Arc::new(Replica::connect(
        hub.addr(),
        app(),
        ReplicaConfig {
            retry: Duration::from_millis(1500),
            ..ReplicaConfig::default()
        },
    ));
    assert!(replica.wait_ready(SYNC_TIMEOUT));
    let before = dump(&server);

    // The next delta tears mid-frame and kills the connection.
    hub.faults().kill_mid_delta.store(true, Ordering::SeqCst);
    server.publish(IndexDelta::adding(vec![fragment("Lao", "larb", 2)]));
    assert!(replica.wait_connected(false, SYNC_TIMEOUT));

    // Nothing of the torn publication is visible: the replica still
    // serves its epoch-0 bytes, not a half-applied delta.
    assert_eq!(replica.epoch(), 0);
    assert_exact(&before, |r| replica.search(r), "during the torn window");

    // The reconnect resumes from the delta log and replays epoch 1.
    assert!(replica.wait_epoch(1, SYNC_TIMEOUT));
    assert!(replica.catchups() >= 1);
    assert_eq!(replica.bootstraps(), 1);
    assert_exact(&dump(&server), |r| replica.search(r), "after the replay");
}

#[test]
fn dropped_delta_frames_are_detected_as_gaps_and_repaired() {
    let base = crawled_fragments();
    let (server, _net, hub) = primary(&base);
    let replica = Arc::new(Replica::connect(
        hub.addr(),
        app(),
        ReplicaConfig::default(),
    ));
    assert!(replica.wait_ready(SYNC_TIMEOUT));

    // The streamer silently swallows the next delta; the one after
    // arrives with an epoch gap (have 0, received 2). The replica must
    // kill the stream — applying epoch 2 without epoch 1 would diverge
    // the mirror — and repair through the reconnect.
    hub.faults().drop_deltas.store(1, Ordering::SeqCst);
    server.publish(IndexDelta::adding(vec![fragment("Lao", "larb", 2)]));
    server.publish(IndexDelta::adding(vec![fragment("Nordic", "herring", 3)]));

    assert!(replica.wait_epoch(2, SYNC_TIMEOUT));
    assert!(replica.catchups() >= 1, "gap repaired via the delta log");
    assert_eq!(replica.bootstraps(), 1);
    assert_exact(&dump(&server), |r| replica.search(r), "after gap repair");
}

// ---------------------------------------------------------------------
// Write forwarding
// ---------------------------------------------------------------------

#[test]
fn a_forwarding_replica_accepts_writes_and_reads_them_back() {
    let base = crawled_fragments();
    let (server, net, hub) = primary(&base);
    let replica = Arc::new(Replica::connect(
        hub.addr(),
        app(),
        ReplicaConfig::default(),
    ));
    assert!(replica.wait_ready(SYNC_TIMEOUT));
    let upstream = Arc::new(Upstream::new(net.addr(), BackoffConfig::default()));
    let replica_net = NetServer::serve_replica_forwarding(
        Arc::clone(&replica),
        upstream,
        TcpListener::bind("127.0.0.1:0").unwrap(),
        NetConfig::default(),
    )
    .unwrap();

    // The write goes to the REPLICA's HTTP port; the ack carries the
    // PRIMARY's publication epoch.
    let mut client = NetClient::connect(replica_net.addr()).unwrap();
    let ack = client
        .publish(&IndexDelta::adding(vec![fragment("Lao", "larb", 2)]))
        .unwrap();
    assert_eq!(ack.epoch, 1, "the primary's epoch, not a local one");
    assert_eq!(server.epoch(), 1, "the primary applied it");

    // Read-your-writes on the same replica connection: the forwarding
    // path waited for the mirror to reach the acked epoch.
    assert!(replica.epoch() >= ack.epoch);
    let larb = SearchRequest::new(&["larb"]).k(3).min_size(1);
    assert_eq!(client.search(&larb).unwrap().len(), 1);
    assert_exact(
        &dump(&server),
        |r| {
            let mut c = NetClient::connect(replica_net.addr()).unwrap();
            c.search(r).unwrap()
        },
        "forwarded write visible on the replica",
    );

    // Record-change bodies forward identically (the primary owns the
    // database; the replica never needs one).
    let record = Record::new(vec![
        Value::Int(8),
        Value::str("Sushi Go"),
        Value::str("Japanese"),
        Value::Int(25),
        Value::str("4.9"),
    ]);
    let ack = client.insert("restaurant", record).unwrap();
    assert_eq!(ack.epoch, 2);
    assert!(replica.wait_epoch(2, SYNC_TIMEOUT));
    let sushi = SearchRequest::new(&["sushi"]).k(3).min_size(1);
    assert_eq!(client.search(&sushi).unwrap().len(), 1);
}

// ---------------------------------------------------------------------
// Routing front tier
// ---------------------------------------------------------------------

#[test]
fn router_spreads_reads_and_retries_past_a_dead_node() {
    let base = crawled_fragments();
    let (server, net, hub) = primary(&base);
    let mut replica_nets = Vec::new();
    let mut replicas = Vec::new();
    for _ in 0..2 {
        let replica = Arc::new(Replica::connect(
            hub.addr(),
            app(),
            ReplicaConfig::default(),
        ));
        assert!(replica.wait_ready(SYNC_TIMEOUT));
        replica_nets.push(
            NetServer::serve_replica(
                Arc::clone(&replica),
                TcpListener::bind("127.0.0.1:0").unwrap(),
                NetConfig::default(),
            )
            .unwrap(),
        );
        replicas.push(replica);
    }
    let addrs = vec![net.addr(), replica_nets[0].addr(), replica_nets[1].addr()];
    let router = Router::new(addrs, RouterConfig::default());
    assert!(router.wait_healthy(3, SYNC_TIMEOUT));
    assert_eq!(router.primary(), Some(net.addr()));

    // Reads round-robin over all three nodes — and every answer is the
    // same bytes (the equivalence tier's guarantee makes spreading
    // safe). Compare the raw wire JSON against the reference encoder.
    let truth = fresh_single(&dump(&server));
    let burger = SearchRequest::new(&["burger"]).k(6).min_size(1);
    for _ in 0..6 {
        assert_eq!(
            router.search_json(&burger).unwrap(),
            hits_to_json(&truth.search(&burger))
        );
    }
    assert_eq!(router.reads(), 6);

    // Kill one replica's front-end: reads keep succeeding (the router
    // fails over to the next healthy node within the same call).
    drop(replica_nets.pop());
    for _ in 0..8 {
        assert_eq!(
            router.search_json(&burger).unwrap(),
            hits_to_json(&truth.search(&burger))
        );
    }
    assert!(router.wait_healthy(2, SYNC_TIMEOUT));
}

// ---------------------------------------------------------------------
// Promotion
// ---------------------------------------------------------------------

#[test]
fn promotion_continues_the_epoch_sequence_and_reseeds_the_cluster() {
    let base = crawled_fragments();
    let (server, net, hub) = primary(&base);
    let a = Arc::new(Replica::connect(
        hub.addr(),
        app(),
        ReplicaConfig::default(),
    ));
    let b = Arc::new(Replica::connect(
        hub.addr(),
        app(),
        ReplicaConfig::default(),
    ));
    let a_net = NetServer::serve_replica(
        Arc::clone(&a),
        TcpListener::bind("127.0.0.1:0").unwrap(),
        NetConfig::default(),
    )
    .unwrap();
    server.publish(IndexDelta::adding(vec![fragment("Nordic", "herring", 3)]));
    server.publish(IndexDelta::adding(vec![fragment("Lao", "larb", 2)]));
    assert!(a.wait_epoch(2, SYNC_TIMEOUT) && b.wait_epoch(2, SYNC_TIMEOUT));

    // Kill the primary outright: HTTP front-end, hub, serving stack.
    drop(net);
    drop(hub);
    drop(server);

    // Promote A. Its server continues the cluster epoch sequence — the
    // next publication is epoch 3, not 1 — and its own delta log
    // (filled by the mirrored publishes) can reseed the others.
    let promoted = a.promote().expect("a synced replica promotes");
    assert!(a.is_promoted());
    assert_eq!(promoted.epoch(), 2);
    let hub2 = ReplicationHub::start(
        Arc::clone(&promoted),
        TcpListener::bind("127.0.0.1:0").unwrap(),
    )
    .unwrap();
    b.retarget(hub2.addr());
    assert!(b.wait_connected(true, SYNC_TIMEOUT));
    assert!(b.catchups() >= 1, "B resumed from A's delta log");
    assert_eq!(
        b.bootstraps(),
        1,
        "no re-snapshot to follow the new primary"
    );

    // A's existing HTTP front-end now serves writes (role flipped).
    let mut client = NetClient::connect(a_net.addr()).unwrap();
    let stats = dash::net::json::parse(&client.stats_json().unwrap()).unwrap();
    assert_eq!(stats.get("role").and_then(|v| v.as_str()), Some("primary"));
    let ack = client
        .publish(&IndexDelta::adding(vec![fragment("Basque", "txakoli", 2)]))
        .unwrap();
    assert_eq!(ack.epoch, 3, "epoch numbering survives the failover");
    assert!(b.wait_epoch(3, SYNC_TIMEOUT), "B follows the new primary");

    // Exactness held across the promotion: both nodes serve bytes a
    // fresh engine over the promoted state produces.
    let truth_fragments = dump(&promoted);
    assert_exact(&truth_fragments, |r| promoted.search(r), "promoted node");
    assert_exact(
        &truth_fragments,
        |r| b.search(r),
        "replica following the promoted node",
    );
}

// ---------------------------------------------------------------------
// Chaos: kill the primary under mixed load
// ---------------------------------------------------------------------

#[test]
fn chaos_primary_kill_under_load_fails_over_without_losing_exactness() {
    let base = crawled_fragments();
    let (server, net, hub) = primary(&base);
    let a = Arc::new(Replica::connect(
        hub.addr(),
        app(),
        ReplicaConfig::default(),
    ));
    let b = Arc::new(Replica::connect(
        hub.addr(),
        app(),
        ReplicaConfig::default(),
    ));
    assert!(a.wait_ready(SYNC_TIMEOUT) && b.wait_ready(SYNC_TIMEOUT));
    let a_net = NetServer::serve_replica(
        Arc::clone(&a),
        TcpListener::bind("127.0.0.1:0").unwrap(),
        NetConfig::default(),
    )
    .unwrap();
    let b_net = NetServer::serve_replica(
        Arc::clone(&b),
        TcpListener::bind("127.0.0.1:0").unwrap(),
        NetConfig::default(),
    )
    .unwrap();
    let router = Router::new(
        vec![net.addr(), a_net.addr(), b_net.addr()],
        RouterConfig {
            probe_interval: Duration::from_millis(25),
            backoff: BackoffConfig::default().deadline(Duration::from_secs(10)),
        },
    );
    assert!(router.wait_healthy(3, SYNC_TIMEOUT));

    let acked = AtomicU64::new(0);
    let read_errors = AtomicU64::new(0);
    let stop_readers = AtomicBool::new(false);
    const WRITE_ROUNDS: u64 = 24;

    // The scope returns hub2 so the promoted node keeps streaming to B
    // through the quiesce and exactness checks below.
    let _hub2 = std::thread::scope(|scope| {
        // Writer: publishes a delta history through the router,
        // retrying errored sends. A `Publish` of the same delta is
        // idempotent on the engine state, so retrying a maybe-applied
        // write is safe here — the caller knows, the router does not.
        let router_ref = &router;
        let acked_ref = &acked;
        scope.spawn(move || {
            for round in 1..=WRITE_ROUNDS {
                let delta = IndexDelta::adding(vec![fragment("Churn", "burger", 1 + round % 5)]);
                let deadline = Instant::now() + SYNC_TIMEOUT;
                loop {
                    match router_ref.update(&UpdateBody::Publish(delta.clone())) {
                        Ok(_) => {
                            acked_ref.fetch_add(1, Ordering::SeqCst);
                            break;
                        }
                        Err(e) => {
                            assert!(Instant::now() < deadline, "write {round} never landed: {e}");
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        // Readers: hammer the router throughout the failover. Every
        // read must succeed — a dead node is retried on the next
        // healthy one within the same call.
        for _ in 0..2 {
            let router_ref = &router;
            let stop = &stop_readers;
            let read_errors = &read_errors;
            scope.spawn(move || {
                let request = SearchRequest::new(&["burger"]).k(6).min_size(1);
                while !stop.load(Ordering::Relaxed) {
                    if router_ref.search(&request).is_err() {
                        read_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }

        // Control plane: once some writes have landed, kill the
        // primary and run the failover sequence.
        while acked.load(Ordering::SeqCst) < 5 {
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(net);
        drop(hub);
        drop(server);
        let promoted = a.promote().expect("A has state to promote");
        let hub2 = ReplicationHub::start(
            Arc::clone(&promoted),
            TcpListener::bind("127.0.0.1:0").unwrap(),
        )
        .unwrap();
        b.retarget(hub2.addr());

        // Wait for the writer to finish, then stop the readers.
        while acked.load(Ordering::SeqCst) < WRITE_ROUNDS {
            std::thread::sleep(Duration::from_millis(10));
        }
        stop_readers.store(true, Ordering::Relaxed);
        hub2
    });

    assert_eq!(acked.load(Ordering::SeqCst), WRITE_ROUNDS);
    assert_eq!(
        read_errors.load(Ordering::Relaxed),
        0,
        "reads survived the failover via retry-on-next-healthy"
    );
    assert!(
        router.write_failovers() >= 1,
        "the writer had to re-discover the primary"
    );
    assert_eq!(
        router.wait_primary(SYNC_TIMEOUT),
        Some(a_net.addr()),
        "the promoted replica is the new write target"
    );

    // Quiesce: B follows the promoted primary to its final epoch.
    let promoted = a.server().expect("promoted server");
    assert!(b.wait_epoch(promoted.epoch(), SYNC_TIMEOUT));
    assert!(b.catchups() >= 1, "B resumed via the promoted node's log");

    // The exactness bar survived the chaos: router-served bytes are a
    // fresh engine's bytes over the promoted node's final fragments.
    let truth_fragments = dump(&promoted);
    let truth = fresh_single(&truth_fragments);
    for kw in ["burger", "coffee", "herring", "zzzmissing"] {
        let request = SearchRequest::new(&[kw]).k(6).min_size(1);
        assert_eq!(
            router.search_json(&request).unwrap(),
            hits_to_json(&truth.search(&request)),
            "post-chaos router bytes for {kw:?}"
        );
    }
    assert_exact(&truth_fragments, |r| b.search(r), "post-chaos replica B");
}
