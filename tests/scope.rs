//! Selective-crawling integration tests: the tradeoff between fragment
//! coverage and crawl/index cost (Section VIII, third future-work item).

use dash::core::crawl::{self, reference, CrawlAlgorithm};
use dash::core::scope::CrawlScope;
use dash::core::{DashConfig, DashEngine, SearchRequest};
use dash::mapreduce::ClusterConfig;
use dash::relation::Value;
use dash::tpch::{generate, Scale, TpchConfig};
use dash::webapp::fooddb;

#[test]
fn scoped_engine_answers_in_scope_only() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    // Only American pages with budgets 9..=12.
    let scope = CrawlScope::all()
        .restrict_values(0, vec![Value::str("American")])
        .restrict_range(1, Some(Value::Int(9)), Some(Value::Int(12)));
    let engine = DashEngine::build(
        &app,
        &db,
        &DashConfig {
            scope,
            ..DashConfig::default()
        },
    )
    .unwrap();
    // (American,9), (American,10), (American,12) survive; (American,18)
    // and (Thai,10) do not.
    assert_eq!(engine.fragment_count(), 3);
    assert!(!engine
        .search(&SearchRequest::new(&["burger"]).k(5).min_size(1))
        .is_empty());
    // Thai burger and McRonald's comment are out of scope.
    assert!(engine
        .search(&SearchRequest::new(&["thai"]).k(5).min_size(1))
        .is_empty());
    assert!(engine
        .search(&SearchRequest::new(&["regret"]).k(5).min_size(1))
        .is_empty());
}

#[test]
fn scoped_crawls_agree_across_algorithms() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let scope = CrawlScope::all().restrict_range(1, Some(Value::Int(10)), Some(Value::Int(12)));
    let cluster = ClusterConfig::default();
    let expected = reference::fragments_scoped(&app, &db, &scope).unwrap();
    assert_eq!(expected.len(), 3); // (Am,10), (Am,12), (Thai,10)
    let sw = crawl::run_scoped(&app, &db, &cluster, CrawlAlgorithm::Stepwise, &scope).unwrap();
    let int = crawl::run_scoped(&app, &db, &cluster, CrawlAlgorithm::Integrated, &scope).unwrap();
    assert_eq!(sw.fragments, expected);
    assert_eq!(int.fragments, expected);
}

/// The tradeoff itself: narrowing the scope shrinks both the fragment
/// count and the crawl's data volume (the paper's "crawling and index
/// efficiency").
#[test]
fn narrower_scope_costs_less() {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 100;
    config.base_parts = 130;
    let db = generate(&config);
    let app = dash::tpch::q2_application(&db).unwrap();
    let cluster = ClusterConfig::default();

    let full = crawl::run(&app, &db, &cluster, CrawlAlgorithm::Integrated).unwrap();
    // Quantity 1..=10 only — a fifth of the range domain.
    let scope = CrawlScope::all().restrict_range(1, Some(Value::Int(1)), Some(Value::Int(10)));
    let scoped =
        crawl::run_scoped(&app, &db, &cluster, CrawlAlgorithm::Integrated, &scope).unwrap();

    assert!(scoped.fragments.len() < full.fragments.len() / 2);
    assert!(scoped.stats.sim_total_secs() < full.stats.sim_total_secs());
    // Scoped fragments are exactly the in-scope subset of the full set.
    let filtered: Vec<_> = full
        .fragments
        .iter()
        .filter(|f| scope.admits(&f.id))
        .cloned()
        .collect();
    assert_eq!(scoped.fragments, filtered);
}

#[test]
fn unrestricted_scope_equals_plain_crawl() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let cluster = ClusterConfig::default();
    let plain = crawl::run(&app, &db, &cluster, CrawlAlgorithm::Integrated).unwrap();
    let scoped = crawl::run_scoped(
        &app,
        &db,
        &cluster,
        CrawlAlgorithm::Integrated,
        &CrawlScope::all(),
    )
    .unwrap();
    assert_eq!(plain.fragments, scoped.fragments);
}
