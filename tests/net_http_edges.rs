//! The HTTP edge tier: what the socket front-end does when peers
//! misbehave. The equivalence tier proves well-formed requests are
//! answered byte-exactly; this tier pins down everything else — the
//! protocol edges where a server either fails loudly, fails silently,
//! or falls over:
//!
//! * malformed request lines and headers are answered with a `400`
//!   carrying the parse error *before* the connection closes — but a
//!   peer that disconnects mid-headers gets silence, not a response
//!   written into a dead socket;
//! * oversized bodies are refused up front (`413`) without buffering;
//! * a binary update body with trailing garbage is rejected without
//!   applying anything (the epoch does not move);
//! * idle keep-alive connections survive concurrent publications, and
//!   the pre-serialized response cache invalidates precisely — only
//!   entries whose keywords a delta touched;
//! * hit lists past the chunk threshold stream back with
//!   `Transfer-Encoding: chunked` and reassemble bit-exactly;
//! * pipelined requests are answered in order on one connection;
//! * a thousand idle connections cost buffers, not threads, and the
//!   connection cap sheds the overflow with a fast `503`.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dash::net::http::CHUNK_THRESHOLD;
use dash::net::server::{encode_update, UpdateBody};
use dash::prelude::*;
use dash::webapp::fooddb;

const SYNC_TIMEOUT: Duration = Duration::from_secs(20);

fn app() -> WebApplication {
    fooddb::search_application().unwrap()
}

fn fragment(cuisine: &str, word: &str, n: u64) -> Fragment {
    Fragment::new(
        FragmentId::new(vec![Value::str(cuisine), Value::Int(7)]),
        [(word.to_string(), n)].into_iter().collect(),
        1,
    )
}

/// A primary HTTP front-end over the fooddb crawl on an ephemeral
/// port, with the given net config.
fn serve(config: NetConfig) -> (Arc<DashServer>, NetServer) {
    let db = fooddb::database();
    let server = Arc::new(
        DashServer::build(&app(), &db, &DashConfig::default(), ServeConfig::default()).unwrap(),
    );
    let net = NetServer::serve_primary(
        Arc::clone(&server),
        db,
        TcpListener::bind("127.0.0.1:0").unwrap(),
        config,
    )
    .unwrap();
    (server, net)
}

/// Writes raw bytes to a fresh connection and reads until EOF.
fn raw_exchange(net: &NetServer, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(net.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    String::from_utf8_lossy(&out).into_owned()
}

/// Waits for an open-connection count; accepts lag behind `connect`.
fn wait_open(net: &NetServer, want: u64) {
    let deadline = Instant::now() + SYNC_TIMEOUT;
    while net.counters().open < want {
        assert!(
            Instant::now() < deadline,
            "open={} never reached {want}",
            net.counters().open
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ---------------------------------------------------------------------
// Malformed input is answered, torn input is not
// ---------------------------------------------------------------------

#[test]
fn malformed_request_line_gets_a_400_with_the_parse_error() {
    let (_server, net) = serve(NetConfig::default());
    let reply = raw_exchange(&net, b"TOTAL NONSENSE\r\n\r\n");
    assert!(
        reply.starts_with("HTTP/1.1 400 "),
        "wanted a 400, got: {reply:?}"
    );
    assert!(
        reply.contains("request line"),
        "the body names what failed to parse: {reply:?}"
    );
    assert!(net.counters().bad_requests >= 1);
}

#[test]
fn header_without_a_colon_gets_a_400() {
    let (_server, net) = serve(NetConfig::default());
    let reply = raw_exchange(&net, b"GET /stats HTTP/1.1\r\nNoColonHere\r\n\r\n");
    assert!(
        reply.starts_with("HTTP/1.1 400 "),
        "wanted a 400, got: {reply:?}"
    );
}

#[test]
fn oversized_content_length_is_refused_up_front_with_413() {
    let (_server, net) = serve(NetConfig::default());
    let reply = raw_exchange(
        &net,
        b"POST /update HTTP/1.1\r\nContent-Length: 1099511627776\r\n\r\n",
    );
    assert!(
        reply.starts_with("HTTP/1.1 413 "),
        "wanted a 413, got: {reply:?}"
    );
}

#[test]
fn disconnect_mid_headers_is_closed_silently() {
    let (_server, net) = serve(NetConfig::default());
    // Half a request line, then the client goes away: there is no
    // peer left to read an error, so none is written.
    let reply = raw_exchange(&net, b"GET /sea");
    assert_eq!(reply, "", "no response into a dead socket: {reply:?}");
    assert_eq!(net.counters().bad_requests, 0);
}

#[test]
fn trailing_garbage_after_an_update_body_is_rejected_without_applying() {
    let (server, net) = serve(NetConfig::default());
    let epoch_before = server.snapshot().epoch;
    let delta = IndexDelta::adding(vec![fragment("Garbage", "junkword", 3)]);
    let mut body = encode_update(&UpdateBody::Publish(delta));
    body.extend_from_slice(b"trailing-garbage");
    let head = format!(
        "POST /update HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut request = head.into_bytes();
    request.extend_from_slice(&body);
    let reply = raw_exchange(&net, &request);
    assert!(
        reply.starts_with("HTTP/1.1 400 "),
        "wanted a 400, got: {reply:?}"
    );
    assert!(
        reply.contains("trailing"),
        "the error names the trailing bytes: {reply:?}"
    );
    assert_eq!(
        server.snapshot().epoch,
        epoch_before,
        "a rejected update must not publish"
    );
    assert!(
        server
            .search(&SearchRequest::new(&["junkword"]).k(3).min_size(1))
            .is_empty(),
        "a rejected update must not index anything"
    );
}

// ---------------------------------------------------------------------
// Keep-alive under publication, cache precision
// ---------------------------------------------------------------------

#[test]
fn idle_keepalive_connections_survive_a_publish() {
    let (server, net) = serve(NetConfig::default());
    let shared = SearchRequest::new(&["burger"]).k(4).min_size(1);
    let disjoint = SearchRequest::new(&["coffee"]).k(4).min_size(1);

    // A handful of keep-alive clients, each warmed with one request.
    let mut clients: Vec<NetClient> = (0..16)
        .map(|_| NetClient::connect(net.addr()).unwrap())
        .collect();
    for client in &mut clients {
        client.search(&shared).unwrap();
    }
    clients[0].search(&disjoint).unwrap();
    let cached = net.response_cache_stats();
    assert!(
        cached.insertions >= 2,
        "both searches were cached: {cached:?}"
    );

    // Publish a delta that touches only the shared keyword while the
    // connections sit idle.
    server.publish(IndexDelta::adding(vec![fragment("Churn", "burger", 2)]));

    // Every idle connection is still usable, and the answers track
    // the new state exactly.
    for (at, client) in clients.iter_mut().enumerate() {
        let served = client.search(&shared).unwrap();
        assert_eq!(served, server.search(&shared), "client {at} diverged");
    }
    let stats = net.response_cache_stats();
    assert!(
        stats.invalidated >= 1,
        "the touched entry was invalidated: {stats:?}"
    );

    // The disjoint entry survived the publish: the next lookup is a
    // byte-cache hit, not a recompute.
    let hits_before = stats.hits;
    let served = clients[0].search(&disjoint).unwrap();
    assert_eq!(served, server.search(&disjoint));
    assert!(
        net.response_cache_stats().hits > hits_before,
        "the untouched entry still serves from cache"
    );
}

#[test]
fn repeated_searches_hit_the_byte_cache() {
    let (_server, net) = serve(NetConfig::default());
    let request = SearchRequest::new(&["fries"]).k(4).min_size(1);
    let mut client = NetClient::connect(net.addr()).unwrap();
    let first = client.search(&request).unwrap();
    let second = client.search(&request).unwrap();
    assert_eq!(first, second);
    let stats = net.response_cache_stats();
    assert!(stats.hits >= 1, "repeat was a byte-cache hit: {stats:?}");
    assert!(net.cached_responses() >= 1);
}

// ---------------------------------------------------------------------
// Chunked streaming
// ---------------------------------------------------------------------

#[test]
fn large_hit_lists_stream_back_chunked_and_reassemble_exactly() {
    let long_tail = "x".repeat(90);
    let fragments: Vec<Fragment> = (0..900)
        .map(|at| {
            Fragment::new(
                FragmentId::new(vec![
                    Value::str(format!("bulk-cuisine-{at:04}-{long_tail}")),
                    Value::Int(7),
                ]),
                BTreeMap::from([("bulkword".to_string(), 1 + at % 7)]),
                1,
            )
        })
        .collect();
    let server =
        Arc::new(DashServer::from_fragments(app(), &fragments, ServeConfig::default()).unwrap());
    let net = NetServer::serve_primary(
        Arc::clone(&server),
        fooddb::database(),
        TcpListener::bind("127.0.0.1:0").unwrap(),
        NetConfig::default(),
    )
    .unwrap();
    let request = SearchRequest::new(&["bulkword"]).k(900).min_size(1);
    let expected = server.search(&request);
    let body = dash::net::json::hits_to_json(&expected);
    assert!(
        body.len() > CHUNK_THRESHOLD,
        "the probe response must exceed the chunk threshold ({} <= {CHUNK_THRESHOLD})",
        body.len()
    );

    // Raw socket: the framing really is chunked on the wire.
    let reply = raw_exchange(
        &net,
        b"GET /search?kw=bulkword&k=900&s=1 HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 200 "), "got: {:.120}", reply);
    let head_end = reply.find("\r\n\r\n").unwrap();
    assert!(
        reply[..head_end]
            .to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "large responses advertise chunked framing: {:.300}",
        reply
    );

    // Client path: the chunked body reassembles to the exact hits.
    let mut client = NetClient::connect(net.addr()).unwrap();
    assert_eq!(client.search(&request).unwrap(), expected);
}

// ---------------------------------------------------------------------
// Pipelining
// ---------------------------------------------------------------------

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (_server, net) = serve(NetConfig::default());
    let reply = raw_exchange(
        &net,
        b"GET /stats HTTP/1.1\r\n\r\nGET /search?kw=burger&k=2&s=1 HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    let responses: Vec<_> = reply.match_indices("HTTP/1.1 200 ").collect();
    assert_eq!(
        responses.len(),
        2,
        "two pipelined requests, two responses: {reply:?}"
    );
    let second = &reply[responses[1].0..];
    assert!(
        second.contains("\"url\""),
        "the second response is the search: {second:?}"
    );
    assert!(
        reply[..responses[1].0].contains("\"role\""),
        "the first response is the stats body"
    );
}

// ---------------------------------------------------------------------
// Scale: idle connections and the cap
// ---------------------------------------------------------------------

#[test]
fn a_thousand_idle_connections_cost_buffers_not_threads() {
    let (_server, net) = serve(NetConfig::default());
    let threads_before = process_threads();

    let idle: Vec<TcpStream> = (0..1000)
        .map(|_| TcpStream::connect(net.addr()).unwrap())
        .collect();
    wait_open(&net, 1000);

    // The thread count did not scale with connections (the delta
    // allows unrelated test-harness threads, not one-per-connection).
    let threads_after = process_threads();
    assert!(
        threads_after <= threads_before + 8,
        "threads went {threads_before} -> {threads_after} under 1000 idle connections"
    );

    // Requests still answer promptly past the idle herd.
    let mut client = NetClient::connect(net.addr()).unwrap();
    let request = SearchRequest::new(&["burger"]).k(4).min_size(1);
    let started = Instant::now();
    let hits = client.search(&request).unwrap();
    assert!(!hits.is_empty());
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "a request under 1000 idle connections answered in {:?}",
        started.elapsed()
    );
    drop(idle);
}

#[test]
fn the_connection_cap_sheds_overflow_with_a_fast_503() {
    let config = NetConfig {
        max_connections: 8,
        ..NetConfig::default()
    };
    let (_server, net) = serve(config);
    let held: Vec<TcpStream> = (0..8)
        .map(|_| TcpStream::connect(net.addr()).unwrap())
        .collect();
    wait_open(&net, 8);

    // The ninth connection is answered 503 and closed, never stalled.
    let mut overflow = TcpStream::connect(net.addr()).unwrap();
    overflow
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reply = Vec::new();
    overflow.read_to_end(&mut reply).unwrap();
    let reply = String::from_utf8_lossy(&reply);
    assert!(
        reply.starts_with("HTTP/1.1 503 "),
        "overflow is told, not stalled: {reply:?}"
    );
    assert!(net.counters().overflows >= 1);

    // Freeing a slot restores service on fresh connections.
    drop(held);
    let deadline = Instant::now() + SYNC_TIMEOUT;
    loop {
        let mut probe = TcpStream::connect(net.addr()).unwrap();
        probe
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        probe
            .write_all(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = Vec::new();
        // A probe shed while the herd's slots drain may be reset
        // mid-read (its request bytes were never consumed) — that is
        // "still full", not a failure.
        if probe.read_to_end(&mut out).is_ok()
            && String::from_utf8_lossy(&out).starts_with("HTTP/1.1 200 ")
        {
            break;
        }
        assert!(Instant::now() < deadline, "service never recovered");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Thread count of this process (Linux), used to show connections do
/// not spawn threads.
fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}
