//! The scale-persistence test tier: arena images
//! ([`ShardedEngine::write_image`] / the builder's `IngestSource::Image`)
//! must be **lossless** and **tamper-evident**.
//!
//! Lossless means byte-identical `SearchHit` lists — an engine loaded
//! from an image answers every request exactly like the engine that
//! dumped it *and* like a fresh single-shard build over the same
//! fragments, at shard counts {1, 4}; re-dumping the loaded engine
//! reproduces the image byte for byte. Tamper-evident means any
//! single-bit flip and any truncation of the image is rejected with an
//! error — never loaded, never a panic.
//!
//! Corpora come from the synthetic generator the scale benchmarks use
//! (`dash_bench::scale::ScaleCorpus`, TPC-H Q2 shape), so this tier
//! exercises the exact dump/load path `benches/scale.rs` times and the
//! replication SNAPSHOT frame ships.

use proptest::prelude::*;

use dash::core::{DashEngine, IngestSource, SearchRequest, ShardedEngine};
use dash::mapreduce::WorkflowStats;
use dash::webapp::WebApplication;
use dash_bench::scale::ScaleCorpus;
use dash_tpch::{generate, Scale, TpchConfig};

/// The application shape `ScaleCorpus` fragments mimic: TPC-H Q2
/// (equality group = custkey, range = quantity). Analysis wants the
/// schema, not the rows, so the database is a throwaway micro one.
fn q2_app() -> WebApplication {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 50;
    config.base_parts = 65;
    let db = generate(&config);
    dash_tpch::q2_application(&db).expect("Q2 analyzes")
}

fn corpus(fragments: usize, groups: usize, seed: u64) -> ScaleCorpus {
    ScaleCorpus {
        fragments,
        groups,
        vocab: 300,
        seed,
        ..ScaleCorpus::default()
    }
}

/// Hot, warm and cold single terms, pairs, and a guaranteed miss, over
/// a spread of `k`/`s` settings.
fn battery() -> Vec<SearchRequest> {
    let mut requests = Vec::new();
    for kw in ["kw000000", "kw000001", "kw000017", "kw000123", "kw000299"] {
        for s in [1u64, 8, 40] {
            requests.push(SearchRequest::new(&[kw]).k(7).min_size(s));
        }
    }
    requests.push(
        SearchRequest::new(&["kw000000", "kw000004"])
            .k(12)
            .min_size(1),
    );
    requests.push(
        SearchRequest::new(&["kw000002", "kw000099"])
            .k(3)
            .min_size(5),
    );
    requests.push(SearchRequest::new(&["zzzmissing"]).k(5).min_size(1));
    requests
}

fn build_sharded(app: &WebApplication, corpus: &ScaleCorpus, shards: usize) -> ShardedEngine {
    ShardedEngine::builder(app.clone())
        .source(IngestSource::Batches(Box::new(
            corpus.shard_batches(shards),
        )))
        .build()
        .expect("corpus builds")
}

#[test]
fn golden_roundtrip_is_byte_identical_and_restable() {
    let app = q2_app();
    let corpus = corpus(400, 8, 0xD1CE);
    let fragments: Vec<_> = corpus.shard_batches(1).flatten().collect();
    let fresh =
        DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).expect("fresh");
    let requests = battery();
    let mut any_hits = false;
    for shards in [1usize, 4] {
        let original = build_sharded(&app, &corpus, shards);
        let mut image = Vec::new();
        original.write_image(&mut image).expect("image dumps");
        let loaded = ShardedEngine::builder(app.clone())
            .source(IngestSource::Image(&image))
            .build()
            .expect("image loads");
        assert_eq!(loaded.fragment_count(), corpus.fragments);
        assert_eq!(loaded.shard_sizes(), original.shard_sizes());
        for request in &requests {
            let expected = fresh.search(request);
            any_hits |= !expected.is_empty();
            assert_eq!(
                original.search(request),
                expected,
                "shards={shards} dumped engine {:?}",
                request.keywords
            );
            assert_eq!(
                loaded.search(request),
                expected,
                "shards={shards} loaded engine {:?}",
                request.keywords
            );
        }
        // The image is a fixed point: re-dumping the loaded engine
        // reproduces it byte for byte.
        let mut redump = Vec::new();
        loaded.write_image(&mut redump).expect("re-dump");
        assert_eq!(redump, image, "shards={shards} image must be byte-stable");
    }
    assert!(any_hits, "battery must exercise non-empty results");
}

#[test]
fn every_sampled_bit_flip_is_rejected() {
    let app = q2_app();
    let original = build_sharded(&app, &corpus(120, 5, 0xFACE), 4);
    let mut image = Vec::new();
    original.write_image(&mut image).expect("image dumps");

    // Step a prime stride so every section (header, catalog, words,
    // lists, arenas, graph) sees flips at varied offsets, plus the
    // edges of the file.
    let mut positions: Vec<usize> = (0..image.len()).step_by(97).collect();
    positions.extend((0..16.min(image.len())).chain(image.len() - 16..image.len()));
    for at in positions {
        for bit in [0u8, 3, 7] {
            let mut torn = image.clone();
            torn[at] ^= 1 << bit;
            assert!(
                ShardedEngine::builder(app.clone())
                    .source(IngestSource::Image(&torn))
                    .build()
                    .is_err(),
                "bit {bit} at byte {at}/{} must not load",
                image.len()
            );
        }
    }
}

#[test]
fn every_sampled_truncation_is_rejected() {
    let app = q2_app();
    let original = build_sharded(&app, &corpus(120, 5, 0xFACE), 2);
    let mut image = Vec::new();
    original.write_image(&mut image).expect("image dumps");
    let mut lengths: Vec<usize> = (0..image.len()).step_by(89).collect();
    lengths.extend([0, 1, 7, 8, image.len() - 1]);
    for len in lengths {
        assert!(
            ShardedEngine::builder(app.clone())
                .source(IngestSource::Image(&image[..len]))
                .build()
                .is_err(),
            "truncation to {len}/{} bytes must not load",
            image.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random corpus shapes, seeds and queries, an engine loaded
    /// from an arena image returns byte-identical hit lists to a fresh
    /// single-shard build over the same fragments, at shards {1, 4}.
    #[test]
    fn arena_roundtrip_matches_fresh_build_on_random_corpora(
        fragments in 30usize..220,
        groups in 1usize..12,
        seed in any::<u64>(),
        ranks in prop::collection::vec(0usize..300, 1..4),
        k in 1usize..12,
        s in prop::sample::select(vec![1u64, 5, 25, 100]),
    ) {
        let app = q2_app();
        let corpus = corpus(fragments, groups, seed);
        let words: Vec<String> = ranks.iter().map(|r| format!("kw{r:06}")).collect();
        let keywords: Vec<&str> = words.iter().map(String::as_str).collect();
        let request = SearchRequest::new(&keywords).k(k).min_size(s);
        let flat: Vec<_> = corpus.shard_batches(1).flatten().collect();
        let fresh =
            DashEngine::from_fragments(app.clone(), &flat, WorkflowStats::new()).unwrap();
        let expected = fresh.search(&request);
        for shards in [1usize, 4] {
            let original = build_sharded(&app, &corpus, shards);
            let mut image = Vec::new();
            original.write_image(&mut image).unwrap();
            let loaded =
                ShardedEngine::builder(app.clone()).source(IngestSource::Image(&image)).build().unwrap();
            prop_assert_eq!(loaded.fragment_count(), corpus.fragments);
            prop_assert_eq!(
                &loaded.search(&request),
                &expected,
                "shards={} fragments={} groups={} keywords={:?} k={} s={}",
                shards, fragments, groups, keywords, k, s
            );
        }
    }
}
