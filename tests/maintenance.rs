//! Long-running incremental-maintenance scenarios: interleaved inserts
//! and deletes must keep the engine equal to a from-scratch rebuild (the
//! paper's first future-work item, exercised hard).

use dash::core::{DashConfig, DashEngine, SearchRequest};
use dash::relation::{Database, Record, Value};
use dash::webapp::fooddb;

fn rebuild(db: &Database) -> DashEngine {
    let app = fooddb::search_application().unwrap();
    DashEngine::build(&app, db, &DashConfig::default()).unwrap()
}

fn assert_equivalent(incremental: &DashEngine, rebuilt: &DashEngine, context: &str) {
    assert_eq!(
        incremental.fragment_count(),
        rebuilt.fragment_count(),
        "{context}: fragment counts"
    );
    assert_eq!(
        incremental.index().graph.edge_count(),
        rebuilt.index().graph.edge_count(),
        "{context}: edge counts"
    );
    for kw in ["burger", "fries", "coffee", "thai", "taco", "pho", "nice"] {
        for s in [1u64, 20, 60] {
            let req = SearchRequest::new(&[kw]).k(6).min_size(s);
            assert_eq!(
                incremental.search(&req),
                rebuilt.search(&req),
                "{context}: search {kw}/{s}"
            );
        }
    }
}

fn restaurant(rid: i64, name: &str, cuisine: &str, budget: i64) -> Record {
    Record::new(vec![
        Value::Int(rid),
        Value::str(name),
        Value::str(cuisine),
        Value::Int(budget),
        Value::str("4.0"),
    ])
}

fn comment(cid: i64, rid: i64, uid: i64, text: &str) -> Record {
    Record::new(vec![
        Value::Int(cid),
        Value::Int(rid),
        Value::Int(uid),
        Value::str(text),
        Value::str("02/12"),
    ])
}

#[test]
fn interleaved_insert_delete_sequence() {
    let mut db = fooddb::database();
    let mut engine = rebuild(&db);

    // 1. Insert a chain of Mexican restaurants spanning budgets 5..9 —
    //    grows a brand-new equality group with edges.
    for (i, budget) in (5..10).enumerate() {
        let r = restaurant(100 + i as i64, "Taco Tower", "Mexican", budget);
        db.table_mut("restaurant")
            .unwrap()
            .insert(r.clone())
            .unwrap();
        engine.apply_insert(&db, "restaurant", &r).unwrap();
    }
    assert_equivalent(&engine, &rebuild(&db), "after mexican chain");
    let hits = engine.search(&SearchRequest::new(&["taco"]).k(1).min_size(100));
    assert_eq!(hits.len(), 1);
    // All five fragments merge under a big threshold.
    assert_eq!(hits[0].fragment_ids.len(), 5);

    // 2. Insert comments on one of them (fragment content change).
    let c = comment(301, 102, 132, "Great taco pho fusion");
    db.table_mut("comment").unwrap().insert(c.clone()).unwrap();
    engine.apply_insert(&db, "comment", &c).unwrap();
    assert_equivalent(&engine, &rebuild(&db), "after comment insert");

    // 3. Delete the middle of the Mexican chain — the edge must re-splice.
    let victim = db
        .table("restaurant")
        .unwrap()
        .iter()
        .find(|r| r.get(0) == Some(&Value::Int(102)))
        .cloned()
        .unwrap();
    db.table_mut("comment")
        .unwrap()
        .delete_where(|r| r.get(1) == Some(&Value::Int(102)));
    engine.apply_delete(&db, "comment", &c).unwrap();
    db.table_mut("restaurant")
        .unwrap()
        .delete_where(|r| r.get(0) == Some(&Value::Int(102)));
    engine.apply_delete(&db, "restaurant", &victim).unwrap();
    assert_equivalent(&engine, &rebuild(&db), "after middle delete");

    // 4. Delete an entire cuisine (Thai) — groups disappear.
    for rid in [5i64, 6] {
        let comments: Vec<Record> = db
            .table("comment")
            .unwrap()
            .iter()
            .filter(|r| r.get(1) == Some(&Value::Int(rid)))
            .cloned()
            .collect();
        for c in comments {
            db.table_mut("comment")
                .unwrap()
                .delete_where(|r| r.get(0) == c.get(0));
            engine.apply_delete(&db, "comment", &c).unwrap();
        }
        let r = db
            .table("restaurant")
            .unwrap()
            .iter()
            .find(|r| r.get(0) == Some(&Value::Int(rid)))
            .cloned()
            .unwrap();
        db.table_mut("restaurant")
            .unwrap()
            .delete_where(|rec| rec.get(0) == Some(&Value::Int(rid)));
        engine.apply_delete(&db, "restaurant", &r).unwrap();
    }
    assert_equivalent(&engine, &rebuild(&db), "after thai removal");
    assert!(engine
        .search(&SearchRequest::new(&["thai"]).k(3).min_size(1))
        .is_empty());
}

#[test]
fn update_via_delete_then_insert() {
    // A budget change moves a restaurant between fragments.
    let mut db = fooddb::database();
    let mut engine = rebuild(&db);
    let old = db
        .table("restaurant")
        .unwrap()
        .iter()
        .find(|r| r.get(0) == Some(&Value::Int(1)))
        .cloned()
        .unwrap();
    // Burger Queen's budget rises from 10 to 11.
    db.table_mut("restaurant")
        .unwrap()
        .delete_where(|r| r.get(0) == Some(&Value::Int(1)));
    engine.apply_delete(&db, "restaurant", &old).unwrap();
    let new = restaurant(1, "Burger Queen", "American", 11);
    db.table_mut("restaurant")
        .unwrap()
        .insert(new.clone())
        .unwrap();
    engine.apply_insert(&db, "restaurant", &new).unwrap();

    assert_equivalent(&engine, &rebuild(&db), "after budget move");
    // The burger page now reports the new budget interval.
    let hits = engine.search(&SearchRequest::new(&["experts"]).k(1).min_size(1));
    assert_eq!(hits.len(), 1);
    assert!(hits[0].url.contains("l=11&u=11"), "got {}", hits[0].url);
}

#[test]
fn repeated_reinsertion_is_stable() {
    let mut db = fooddb::database();
    let mut engine = rebuild(&db);
    let r = restaurant(200, "Pho Palace", "Vietnamese", 9);
    for round in 0..3 {
        db.table_mut("restaurant")
            .unwrap()
            .insert(r.clone())
            .unwrap();
        engine.apply_insert(&db, "restaurant", &r).unwrap();
        assert_eq!(
            engine
                .search(&SearchRequest::new(&["pho"]).k(5).min_size(1))
                .len(),
            1,
            "round {round}"
        );
        db.table_mut("restaurant")
            .unwrap()
            .delete_where(|rec| rec.get(0) == Some(&Value::Int(200)));
        engine.apply_delete(&db, "restaurant", &r).unwrap();
        assert!(engine
            .search(&SearchRequest::new(&["pho"]).k(5).min_size(1))
            .is_empty());
    }
    assert_equivalent(&engine, &rebuild(&db), "after churn");
}
