//! The serve test tier: everything `dash-serve` adds on top of the
//! engines — snapshot swapping, micro-batching, result caching —
//! must be **invisible** in the results. A served hit list, whether it
//! came from the cache, from whatever micro-batch the request landed
//! in, or from either side of a snapshot swap, is byte-identical to a
//! fresh `DashEngine::search` over the server's current fragment set,
//! at shard counts {1, 4}.
//!
//! Three layers of evidence:
//!
//! * golden serving — the fooddb running example behind a server:
//!   sequential, repeated (cache-hitting), client-batched and
//!   concurrent traffic against a freshly built single engine;
//! * golden publications — fooddb mutation sequences published through
//!   the server (per-record and bulk), with every request battery
//!   re-verified after every publication (a stale cached page would
//!   fail the comparison bit for bit);
//! * property tests — random interleavings of search / delta-publish /
//!   search over random fragment sets (the `sharded_maintenance`
//!   delta-history generator), asserting a request cached before a
//!   publication is never served stale after it.

use std::collections::BTreeMap;

use proptest::prelude::*;

use dash::core::crawl::reference;
use dash::mapreduce::WorkflowStats;
use dash::prelude::*;
use dash::webapp::fooddb;

const SHARD_COUNTS: [usize; 2] = [1, 4];

fn fresh_single(fragments: &[Fragment]) -> DashEngine {
    let app = fooddb::search_application().unwrap();
    DashEngine::from_fragments(app, fragments, WorkflowStats::new()).unwrap()
}

fn server_over(fragments: &[Fragment], shards: usize) -> DashServer {
    let app = fooddb::search_application().unwrap();
    DashServer::from_fragments(app, fragments, ServeConfig::default().shards(shards)).unwrap()
}

fn crawled_fragments() -> Vec<Fragment> {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    reference::fragments(&app, &db).unwrap()
}

/// The request battery every comparison runs: hot/cold keywords, size
/// thresholds from no-expansion to whole-group, multi-keyword, missing.
fn battery() -> Vec<SearchRequest> {
    let mut requests = Vec::new();
    for kw in ["burger", "fries", "coffee", "thai", "taco", "nice"] {
        for s in [1u64, 20, 60] {
            requests.push(SearchRequest::new(&[kw]).k(6).min_size(s));
        }
    }
    requests.push(SearchRequest::new(&["burger", "taco"]).k(8).min_size(10));
    requests.push(SearchRequest::new(&["zzzmissing"]).k(3).min_size(1));
    requests
}

/// Serves the battery every way the front-end can — one by one (twice:
/// the repeat answers from the cache), client-batched, and from
/// concurrent threads — and requires byte-identity with the fresh
/// single engine each time.
fn assert_served_equivalent(server: &DashServer, fresh: &DashEngine, context: &str) {
    let requests = battery();
    let expected: Vec<_> = requests.iter().map(|r| fresh.search(r)).collect();
    for pass in ["miss", "cached"] {
        for (request, expected) in requests.iter().zip(&expected) {
            assert_eq!(
                &server.search(request),
                expected,
                "{context}: pass={pass} keywords={:?} k={} s={}",
                request.keywords,
                request.k,
                request.min_size
            );
        }
    }
    assert_eq!(
        server.search_many(&requests),
        expected,
        "{context}: client-batched"
    );
    std::thread::scope(|scope| {
        for t in 0..4 {
            let requests = &requests;
            let expected = &expected;
            scope.spawn(move || {
                for (request, expected) in requests.iter().zip(expected) {
                    assert_eq!(
                        &server.search(request),
                        expected,
                        "{context}: concurrent client {t} keywords={:?}",
                        request.keywords
                    );
                }
            });
        }
    });
}

#[test]
fn served_results_match_fresh_engine_for_all_shard_counts() {
    let fragments = crawled_fragments();
    let fresh = fresh_single(&fragments);
    for shards in SHARD_COUNTS {
        let server = server_over(&fragments, shards);
        assert_served_equivalent(&server, &fresh, &format!("shards={shards}"));
        let stats = server.stats();
        assert!(stats.cache.hits > 0, "repeat passes must hit the cache");
        assert!(stats.batches > 0, "misses must flow through the batcher");
    }
}

#[test]
fn served_results_match_fresh_engine_at_env_shards() {
    // `ServeConfig::default()` reads DASH_SHARDS — this is the test
    // that makes the CI matrix legs (shards = 1 and 4) exercise the
    // serving stack at genuinely different widths, on top of the
    // explicit SHARD_COUNTS coverage above.
    let fragments = crawled_fragments();
    let fresh = fresh_single(&fragments);
    let app = fooddb::search_application().unwrap();
    let server = DashServer::from_fragments(app, &fragments, ServeConfig::default()).unwrap();
    let width = server.snapshot().engine.shard_count();
    assert_eq!(width, dash::core::env_shards().unwrap_or(1));
    assert_served_equivalent(&server, &fresh, &format!("env shards={width}"));
}

#[test]
fn serving_stays_exact_across_delta_publications() {
    // The golden mutation scenario, published through the server: grow
    // a new cuisine record by record, grow one fragment's content,
    // then delete the chain's middle — with the full battery
    // (cache-warming double pass included) re-verified after every
    // single publication, at every shard count.
    for shards in SHARD_COUNTS {
        let mut db = fooddb::database();
        let app = fooddb::search_application().unwrap();
        let server = DashServer::build(
            &app,
            &db,
            &DashConfig::default(),
            ServeConfig::default().shards(shards),
        )
        .unwrap();
        let context = |step: &str| format!("shards={shards}: {step}");

        let restaurant = |rid: i64, name: &str, cuisine: &str, budget: i64| {
            Record::new(vec![
                Value::Int(rid),
                Value::str(name),
                Value::str(cuisine),
                Value::Int(budget),
                Value::str("4.0"),
            ])
        };
        let mut epoch = 0;
        for (i, budget) in (5..8).enumerate() {
            let r = restaurant(100 + i as i64, "Taco Tower", "Mexican", budget);
            db.table_mut("restaurant")
                .unwrap()
                .insert(r.clone())
                .unwrap();
            server.apply_insert(&db, "restaurant", &r).unwrap();
            epoch += 1;
            assert_eq!(server.epoch(), epoch);
            let fresh = fresh_single(&reference::fragments(&app, &db).unwrap());
            assert_served_equivalent(&server, &fresh, &context("after taco insert"));
        }

        let comment = Record::new(vec![
            Value::Int(301),
            Value::Int(101),
            Value::Int(132),
            Value::str("Great taco pho fusion"),
            Value::str("02/12"),
        ]);
        db.table_mut("comment")
            .unwrap()
            .insert(comment.clone())
            .unwrap();
        server.apply_insert(&db, "comment", &comment).unwrap();
        let fresh = fresh_single(&reference::fragments(&app, &db).unwrap());
        assert_served_equivalent(&server, &fresh, &context("after comment insert"));

        db.table_mut("comment")
            .unwrap()
            .delete_where(|r| r.get(1) == Some(&Value::Int(101)));
        let victim = db
            .table("restaurant")
            .unwrap()
            .iter()
            .find(|r| r.get(0) == Some(&Value::Int(101)))
            .cloned()
            .unwrap();
        db.table_mut("restaurant")
            .unwrap()
            .delete_where(|r| r.get(0) == Some(&Value::Int(101)));
        server
            .apply_changes(
                &db,
                &[
                    RecordChange::new("comment", comment),
                    RecordChange::new("restaurant", victim),
                ],
            )
            .unwrap();
        let fresh = fresh_single(&reference::fragments(&app, &db).unwrap());
        assert_served_equivalent(&server, &fresh, &context("after bulk delete"));
    }
}

#[test]
fn precise_invalidation_spares_unrelated_entries() {
    // The caching contract has two halves: correctness (no stale
    // pages — everywhere else in this tier) and precision (a delta
    // must NOT wipe entries it provably cannot affect).
    let fragments = crawled_fragments();
    let server = server_over(&fragments, 2);
    let thai = SearchRequest::new(&["thai"]).k(3).min_size(5);
    let coffee = SearchRequest::new(&["coffee"]).k(3).min_size(1);
    server.search(&thai);
    server.search(&coffee);
    let cached = server.cached_results();
    assert_eq!(cached, 2);
    // A brand-new group with brand-new keywords: disjoint from both
    // entries on both signature axes.
    server.publish(IndexDelta::adding(vec![Fragment::new(
        FragmentId::new(vec![Value::str("Nordic"), Value::Int(7)]),
        [("herring".to_string(), 2u64)].into_iter().collect(),
        1,
    )]));
    assert_eq!(
        server.cached_results(),
        cached,
        "a disjoint delta must not invalidate unrelated entries"
    );
    assert_eq!(server.stats().cache.invalidated, 0);
    // Touching the Thai group invalidates the thai entry, not coffee.
    server.publish(IndexDelta::removing(vec![FragmentId::new(vec![
        Value::str("Thai"),
        Value::Int(10),
    ])]));
    assert_eq!(server.stats().cache.invalidated, 1);
    // And the served results are still exact on both.
    let mut truth: Vec<Fragment> = fragments
        .iter()
        .filter(|f| f.id.to_string() != "(Thai,10)")
        .cloned()
        .collect();
    truth.push(Fragment::new(
        FragmentId::new(vec![Value::str("Nordic"), Value::Int(7)]),
        [("herring".to_string(), 2u64)].into_iter().collect(),
        1,
    ));
    let fresh = fresh_single(&truth);
    for request in [&thai, &coffee] {
        assert_eq!(&server.search(request), &fresh.search(request));
    }
}

// ---------------------------------------------------------------------
// Property tests: random interleavings of search / publish / search.
// ---------------------------------------------------------------------

const EQ_KEYS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
const VOCAB: [&str; 8] = [
    "burger", "fries", "noodle", "spicy", "fresh", "crispy", "sweet", "salty",
];

/// One generated fragment row (the `sharded_maintenance` generator).
#[derive(Debug, Clone)]
struct GenFragment {
    eq: usize,
    range: i64,
    words: Vec<(usize, u64)>,
}

impl GenFragment {
    fn id(&self) -> FragmentId {
        FragmentId::new(vec![Value::str(EQ_KEYS[self.eq]), Value::Int(self.range)])
    }

    fn materialize(&self) -> Fragment {
        let mut occ: BTreeMap<String, u64> = BTreeMap::new();
        for &(w, n) in &self.words {
            *occ.entry(VOCAB[w].to_string()).or_insert(0) += n;
        }
        Fragment::new(self.id(), occ, 1)
    }
}

/// One step of an interleaving: a search (cache-warming, repeated) or
/// a delta publication.
#[derive(Debug, Clone)]
enum Step {
    /// Search these VOCAB indices with (k, s) — issued twice, so the
    /// second answer exercises the cache and a later publication has a
    /// warm entry to invalidate (or precisely spare).
    Search(Vec<usize>, usize, u64),
    /// Publish an upsert of this fragment.
    Upsert(GenFragment),
    /// Publish a removal of this (eq, range) coordinate.
    Remove(usize, i64),
}

fn fragment_strategy() -> impl Strategy<Value = GenFragment> {
    (
        0..EQ_KEYS.len(),
        0i64..12,
        prop::collection::vec((0usize..VOCAB.len(), 1u64..5), 1..4),
    )
        .prop_map(|(eq, range, words)| GenFragment { eq, range, words })
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (
            prop::collection::vec(0usize..VOCAB.len(), 1..3),
            1usize..8,
            prop::sample::select(vec![1u64, 3, 10, 50]),
        )
            .prop_map(|(q, k, s)| Step::Search(q, k, s)),
        (
            prop::collection::vec(0usize..VOCAB.len(), 1..3),
            1usize..8,
            prop::sample::select(vec![1u64, 3, 10, 50]),
        )
            .prop_map(|(q, k, s)| Step::Search(q, k, s)),
        fragment_strategy().prop_map(Step::Upsert),
        (0..EQ_KEYS.len(), 0i64..12).prop_map(|(eq, range)| Step::Remove(eq, range)),
    ]
}

/// First occurrence of an identifier wins, like a crawl's output.
fn materialize(rows: &[GenFragment]) -> Vec<Fragment> {
    let mut seen = std::collections::HashSet::new();
    let mut fragments = Vec::new();
    for row in rows {
        if seen.insert(row.id()) {
            fragments.push(row.materialize());
        }
    }
    fragments
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The tier's core contract, interleaved: searches before and
    /// after every publication are byte-identical to a fresh engine
    /// over the then-current truth — so a page cached before a delta
    /// is never served stale after it, and precise invalidation never
    /// over-trusts a surviving entry.
    #[test]
    fn interleaved_search_publish_search_never_serves_stale(
        rows in prop::collection::vec(fragment_strategy(), 1..25),
        steps in prop::collection::vec(step_strategy(), 1..15),
        shards in prop::sample::select(vec![1usize, 4]),
    ) {
        let app = fooddb::search_application().unwrap();
        let initial = materialize(&rows);
        let mut truth: Vec<Fragment> = initial.clone();
        let server = DashServer::from_fragments(
            app.clone(),
            &initial,
            ServeConfig::default().shards(shards),
        )
        .unwrap();
        for step in &steps {
            match step {
                Step::Search(query, k, s) => {
                    let keywords: Vec<&str> = query.iter().map(|&w| VOCAB[w]).collect();
                    let request = SearchRequest::new(&keywords).k(*k).min_size(*s);
                    let fresh = DashEngine::from_fragments(
                        app.clone(),
                        &truth,
                        WorkflowStats::new(),
                    )
                    .unwrap();
                    let expected = fresh.search(&request);
                    // Twice: miss (or earlier-cached) and guaranteed-cached.
                    prop_assert_eq!(
                        server.search(&request),
                        expected.clone(),
                        "shards={} truth={} first pass {:?}",
                        shards, truth.len(), &keywords
                    );
                    prop_assert_eq!(
                        server.search(&request),
                        expected,
                        "shards={} truth={} cached pass {:?}",
                        shards, truth.len(), &keywords
                    );
                }
                Step::Upsert(row) => {
                    let fragment = row.materialize();
                    truth.retain(|f| f.id != fragment.id);
                    truth.push(fragment.clone());
                    server.publish(IndexDelta::new(vec![row.id()], vec![fragment]));
                }
                Step::Remove(eq, range) => {
                    let id = FragmentId::new(vec![Value::str(EQ_KEYS[*eq]), Value::Int(*range)]);
                    truth.retain(|f| f.id != id);
                    server.publish(IndexDelta::removing(vec![id]));
                }
            }
        }
        // Final sweep: every vocabulary word, against the final truth.
        let fresh =
            DashEngine::from_fragments(app, &truth, WorkflowStats::new()).unwrap();
        for word in VOCAB {
            let request = SearchRequest::new(&[word]).k(5).min_size(3);
            prop_assert_eq!(
                server.search(&request),
                fresh.search(&request),
                "final sweep shards={} word={}",
                shards, word
            );
        }
    }
}
