//! Property-based tests over randomized databases: the fragment
//! invariants, the equivalence of all derivation paths, Algorithm 1's
//! output contracts, and incremental-maintenance consistency.

use proptest::prelude::*;

use dash::core::crawl::{integrated, reference, stepwise};
use dash::core::{DashConfig, DashEngine, SearchRequest};
use dash::mapreduce::ClusterConfig;
use dash::relation::{Column, ColumnType, Database, ForeignKey, Record, Schema, Table, Value};
use dash::webapp::{fooddb, QueryString, WebApplication};

const CUISINES: [&str; 3] = ["American", "Thai", "Sushi"];
const WORDS: [&str; 8] = [
    "burger", "fries", "noodle", "spicy", "fresh", "crispy", "sweet", "salty",
];
const USERS: [(i64, &str); 4] = [(1, "Ann"), (2, "Bob"), (3, "Cam"), (4, "Dee")];

#[derive(Debug, Clone)]
struct RestaurantRow {
    cuisine: usize,
    budget: i64,
    word: usize,
    comments: Vec<(usize, usize, usize)>, // (user, word1, word2)
}

fn restaurant_strategy() -> impl Strategy<Value = RestaurantRow> {
    (
        0..CUISINES.len(),
        5i64..12,
        0..WORDS.len(),
        prop::collection::vec((0..USERS.len(), 0..WORDS.len(), 0..WORDS.len()), 0..3),
    )
        .prop_map(|(cuisine, budget, word, comments)| RestaurantRow {
            cuisine,
            budget,
            word,
            comments,
        })
}

/// Builds a fooddb-schema database from generated rows.
fn build_db(rows: &[RestaurantRow]) -> Database {
    let mut db = Database::new("propdb");
    let restaurant_schema = Schema::builder("restaurant")
        .column(Column::new("rid", ColumnType::Int))
        .column(Column::new("name", ColumnType::Str))
        .column(Column::new("cuisine", ColumnType::Str))
        .column(Column::new("budget", ColumnType::Int))
        .column(Column::new("rate", ColumnType::Str))
        .primary_key(&["rid"])
        .build()
        .unwrap();
    let comment_schema = Schema::builder("comment")
        .column(Column::new("cid", ColumnType::Int))
        .column(Column::new("rid", ColumnType::Int))
        .column(Column::new("uid", ColumnType::Int))
        .column(Column::new("comment", ColumnType::Str))
        .column(Column::new("date", ColumnType::Str))
        .primary_key(&["cid"])
        .build()
        .unwrap();
    let customer_schema = Schema::builder("customer")
        .column(Column::new("uid", ColumnType::Int))
        .column(Column::new("uname", ColumnType::Str))
        .primary_key(&["uid"])
        .build()
        .unwrap();

    let mut restaurant = Table::new(restaurant_schema);
    let mut comment = Table::new(comment_schema);
    let mut cid = 100i64;
    for (i, row) in rows.iter().enumerate() {
        restaurant
            .insert(Record::new(vec![
                Value::Int(i as i64),
                Value::str(format!("{} house", WORDS[row.word])),
                Value::str(CUISINES[row.cuisine]),
                Value::Int(row.budget),
                Value::str("4.0"),
            ]))
            .unwrap();
        for (user, w1, w2) in &row.comments {
            comment
                .insert(Record::new(vec![
                    Value::Int(cid),
                    Value::Int(i as i64),
                    Value::Int(USERS[*user].0),
                    Value::str(format!("{} {}", WORDS[*w1], WORDS[*w2])),
                    Value::str("01/12"),
                ]))
                .unwrap();
            cid += 1;
        }
    }
    let mut customer = Table::new(customer_schema);
    for (uid, name) in USERS {
        customer
            .insert(Record::new(vec![Value::Int(uid), Value::str(name)]))
            .unwrap();
    }
    db.add_table(restaurant);
    db.add_table(comment);
    db.add_table(customer);
    db.add_foreign_key(ForeignKey::new("comment", "rid", "restaurant", "rid"));
    db.add_foreign_key(ForeignKey::new("comment", "uid", "customer", "uid"));
    db
}

fn app_for(db: &Database) -> WebApplication {
    WebApplication::from_servlet_source(fooddb::SEARCH_SERVLET, db).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fragments partition the join disjointly: record counts sum to the
    /// join cardinality, identifiers are unique, and keyword totals are
    /// internally consistent.
    #[test]
    fn fragments_partition_join(rows in prop::collection::vec(restaurant_strategy(), 1..20)) {
        let db = build_db(&rows);
        let app = app_for(&db);
        let joined = app.query.join_all(&db).unwrap();
        let fragments = reference::fragments(&app, &db).unwrap();

        let total: u64 = fragments.iter().map(|f| f.record_count).sum();
        prop_assert_eq!(total, joined.len() as u64);

        let mut ids: Vec<_> = fragments.iter().map(|f| f.id.clone()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "duplicate fragment identifiers");

        for f in &fragments {
            let sum: u64 = f.keyword_occurrences.values().sum();
            prop_assert_eq!(sum, f.total_keywords);
        }
    }

    /// All three derivation paths agree on arbitrary databases.
    #[test]
    fn derivation_paths_agree(rows in prop::collection::vec(restaurant_strategy(), 1..14)) {
        let db = build_db(&rows);
        let app = app_for(&db);
        let cluster = ClusterConfig::default();
        let expected = reference::fragments(&app, &db).unwrap();
        let sw = stepwise::run(&app, &db, &cluster).unwrap();
        prop_assert_eq!(&sw.fragments, &expected);
        let int = integrated::run(&app, &db, &cluster).unwrap();
        prop_assert_eq!(&int.fragments, &expected);
    }

    /// Algorithm 1's output contract: at most k hits, pairwise
    /// fragment-disjoint, every hit's page really contains a queried
    /// keyword, and its reported size matches the materialized page.
    #[test]
    fn topk_output_contract(
        rows in prop::collection::vec(restaurant_strategy(), 1..16),
        keyword in 0..WORDS.len(),
        k in 1usize..5,
        s in prop::sample::select(vec![1u64, 10, 40, 200]),
    ) {
        let db = build_db(&rows);
        let app = app_for(&db);
        let fragments = reference::fragments(&app, &db).unwrap();
        let engine = DashEngine::from_fragments(
            app.clone(),
            &fragments,
            dash::mapreduce::WorkflowStats::new(),
        )
        .unwrap();
        let word = WORDS[keyword];
        let hits = engine.search(&SearchRequest::new(&[word]).k(k).min_size(s));
        prop_assert!(hits.len() <= k);

        let mut seen = std::collections::HashSet::new();
        for hit in &hits {
            for id in &hit.fragment_ids {
                prop_assert!(seen.insert(id.clone()), "fragment shared between hits");
            }
            prop_assert!(hit.score > 0.0);
            let qs = QueryString::parse(&hit.query_string).unwrap();
            let page = app.execute(&db, &qs).unwrap();
            prop_assert!(page.keywords().iter().any(|w| w == word));
            prop_assert_eq!(page.keywords().len() as u64, hit.size);
        }
    }

    /// Incremental insert maintenance converges to the same index as a
    /// from-scratch rebuild.
    #[test]
    fn incremental_insert_equals_rebuild(
        rows in prop::collection::vec(restaurant_strategy(), 1..10),
        new_row in restaurant_strategy(),
    ) {
        let mut db = build_db(&rows);
        let app = app_for(&db);
        let mut engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();

        let record = Record::new(vec![
            Value::Int(500),
            Value::str(format!("{} palace", WORDS[new_row.word])),
            Value::str(CUISINES[new_row.cuisine]),
            Value::Int(new_row.budget),
            Value::str("3.5"),
        ]);
        db.table_mut("restaurant").unwrap().insert(record.clone()).unwrap();
        engine.apply_insert(&db, "restaurant", &record).unwrap();

        let rebuilt = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
        prop_assert_eq!(engine.fragment_count(), rebuilt.fragment_count());
        prop_assert_eq!(
            engine.index().graph.edge_count(),
            rebuilt.index().graph.edge_count()
        );
        for word in WORDS {
            let req = SearchRequest::new(&[word]).k(4).min_size(10);
            prop_assert_eq!(engine.search(&req), rebuilt.search(&req), "keyword {}", word);
        }
    }

    /// The fragment graph is insertion-order independent.
    #[test]
    fn graph_insertion_order_independent(
        rows in prop::collection::vec(restaurant_strategy(), 1..12),
        seed in 0u64..1000,
    ) {
        use dash::core::{FragmentCatalog, FragmentGraph};
        let db = build_db(&rows);
        let app = app_for(&db);
        let fragments = reference::fragments(&app, &db).unwrap();
        let range = app.query.range_selection_index();

        let catalog = FragmentCatalog::from_fragments(&fragments);
        let bulk = FragmentGraph::build(&catalog, &fragments, range).unwrap();
        // Shuffle deterministically by seed and insert incrementally.
        let mut shuffled = fragments.clone();
        let n = shuffled.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            shuffled.swap(i, j);
        }
        let mut incremental = FragmentGraph::build(&catalog, &[], range).unwrap();
        for f in &shuffled {
            incremental.insert(&catalog, f);
        }
        prop_assert_eq!(bulk.node_count(), incremental.node_count());
        prop_assert_eq!(bulk.edge_count(), incremental.edge_count());
        for f in &fragments {
            let frag = catalog.frag(&f.id).unwrap();
            let a = bulk.locate(frag).unwrap();
            let b = incremental.locate(frag).unwrap();
            prop_assert_eq!(a.position, b.position);
            prop_assert_eq!(a.group, b.group);
        }
    }
}
