//! Golden-equivalence tests for the handle-native search path.
//!
//! The columnar index (interned `Frag` handles, arena posting lists,
//! group-id candidates) must return **byte-identical** `SearchHit` lists
//! to the seed implementation, which keyed everything on
//! `FragmentId = Vec<Value>`. The seed's Algorithm 1 is preserved below
//! as a test-local reference (`seed_reference`), built straight from raw
//! fragments with the original `HashMap`/`BTreeMap` structures — any
//! behavioral drift in the optimized path shows up as a diff against it.

use std::cmp::Ordering;
use std::collections::HashMap;

use dash::core::crawl::reference;
use dash::core::{DashConfig, DashEngine, Fragment, FragmentId, SearchHit, SearchRequest};
use dash::relation::Database;
use dash::webapp::{fooddb, WebApplication};
use dash_tpch::{generate, Scale, TpchConfig};

/// The seed's top-k search, verbatim semantics: value-vector group keys,
/// per-keyword occurrence hash maps, allocating candidates.
mod seed_reference {
    use super::*;
    use dash::relation::Value;
    use dash::webapp::{ParamValues, SelectionBinding};
    use std::collections::{BTreeMap, BinaryHeap, HashSet};

    struct Node {
        id: FragmentId,
        total_keywords: u64,
    }

    pub struct SeedIndex {
        groups: BTreeMap<Vec<Value>, Vec<Node>>,
        maps: HashMap<String, HashMap<FragmentId, u64>>,
        postings: HashMap<String, Vec<(FragmentId, u64, u64)>>, // (id, occ, doc_len), TF-sorted
        range_position: Option<usize>,
    }

    pub fn build(fragments: &[Fragment], range_position: Option<usize>) -> SeedIndex {
        let mut groups: BTreeMap<Vec<Value>, Vec<Node>> = BTreeMap::new();
        let mut maps: HashMap<String, HashMap<FragmentId, u64>> = HashMap::new();
        let mut postings: HashMap<String, Vec<(FragmentId, u64, u64)>> = HashMap::new();
        for f in fragments {
            let key = match range_position {
                Some(pos) => f.id.without(pos),
                None => f.id.values().to_vec(),
            };
            groups.entry(key).or_default().push(Node {
                id: f.id.clone(),
                total_keywords: f.total_keywords,
            });
            for (word, &occ) in &f.keyword_occurrences {
                maps.entry(word.clone())
                    .or_default()
                    .insert(f.id.clone(), occ);
                postings.entry(word.clone()).or_default().push((
                    f.id.clone(),
                    occ,
                    f.total_keywords,
                ));
            }
        }
        if let Some(pos) = range_position {
            for nodes in groups.values_mut() {
                nodes.sort_by(|a, b| a.id.values()[pos].cmp(&b.id.values()[pos]));
            }
        }
        let tf = |occ: u64, len: u64| {
            if len == 0 {
                0.0
            } else {
                occ as f64 / len as f64
            }
        };
        for list in postings.values_mut() {
            list.sort_by(|a, b| {
                tf(b.1, b.2)
                    .partial_cmp(&tf(a.1, a.2))
                    .expect("finite TF")
                    .then_with(|| a.0.cmp(&b.0))
            });
        }
        SeedIndex {
            groups,
            maps,
            postings,
            range_position,
        }
    }

    #[derive(Debug, Clone)]
    struct Candidate {
        group: Vec<Value>,
        lo: usize,
        hi: usize,
        occurrences: Vec<u64>,
        total_keywords: u64,
        score: f64,
    }

    impl PartialEq for Candidate {
        fn eq(&self, other: &Self) -> bool {
            self.score == other.score
        }
    }
    impl Eq for Candidate {}
    impl PartialOrd for Candidate {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Candidate {
        fn cmp(&self, other: &Self) -> Ordering {
            self.score
                .partial_cmp(&other.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| (other.hi - other.lo).cmp(&(self.hi - self.lo)))
                .then_with(|| other.group.cmp(&self.group))
                .then_with(|| other.lo.cmp(&self.lo))
        }
    }

    fn score_of(occurrences: &[u64], total_keywords: u64, idf: &[f64]) -> f64 {
        if total_keywords == 0 {
            return 0.0;
        }
        occurrences
            .iter()
            .zip(idf)
            .map(|(&occ, &idf_w)| (occ as f64 / total_keywords as f64) * idf_w)
            .sum()
    }

    pub fn top_k(
        app: &WebApplication,
        index: &SeedIndex,
        request: &SearchRequest,
    ) -> Vec<SearchHit> {
        if request.k == 0 || request.keywords.is_empty() {
            return Vec::new();
        }
        let idf: Vec<f64> = request
            .keywords
            .iter()
            .map(|w| match index.postings.get(w).map_or(0, Vec::len) {
                0 => 0.0,
                n => 1.0 / n as f64,
            })
            .collect();
        let empty_map: HashMap<FragmentId, u64> = HashMap::new();
        let occurrence_maps: Vec<&HashMap<FragmentId, u64>> = request
            .keywords
            .iter()
            .map(|w| index.maps.get(w).unwrap_or(&empty_map))
            .collect();
        let empty_list: Vec<(FragmentId, u64, u64)> = Vec::new();
        let postings: Vec<&[(FragmentId, u64, u64)]> = request
            .keywords
            .iter()
            .map(|w| index.postings.get(w).unwrap_or(&empty_list).as_slice())
            .collect();
        let tf = |p: &(FragmentId, u64, u64)| {
            if p.2 == 0 {
                0.0
            } else {
                p.1 as f64 / p.2 as f64
            }
        };
        let locate = |id: &FragmentId| -> Option<(Vec<Value>, usize)> {
            let key = match index.range_position {
                Some(pos) => id.without(pos),
                None => id.values().to_vec(),
            };
            let nodes = index.groups.get(&key)?;
            let position = nodes.iter().position(|n| n.id == *id)?;
            Some((key, position))
        };

        let mut cursors: Vec<usize> = vec![0; postings.len()];
        let mut seeded: HashSet<FragmentId> = HashSet::new();
        let mut queue: BinaryHeap<Candidate> = BinaryHeap::new();

        let frontier_bound = |cursors: &[usize]| -> f64 {
            postings
                .iter()
                .zip(cursors)
                .zip(&idf)
                .map(|((list, &cur), &idf_w)| list.get(cur).map_or(0.0, |p| tf(p) * idf_w))
                .sum()
        };
        let seed_one = |cursors: &mut Vec<usize>,
                        seeded: &mut HashSet<FragmentId>,
                        queue: &mut BinaryHeap<Candidate>|
         -> bool {
            loop {
                let mut best: Option<(usize, f64)> = None;
                for (w, ((list, &cur), &idf_w)) in
                    postings.iter().zip(cursors.iter()).zip(&idf).enumerate()
                {
                    if let Some(p) = list.get(cur) {
                        let bound = tf(p) * idf_w;
                        if best.is_none_or(|(_, b)| bound > b) {
                            best = Some((w, bound));
                        }
                    }
                }
                let Some((w, _)) = best else {
                    return false;
                };
                let posting = &postings[w][cursors[w]];
                cursors[w] += 1;
                if !seeded.insert(posting.0.clone()) {
                    continue;
                }
                let Some((group, position)) = locate(&posting.0) else {
                    continue;
                };
                let occurrences: Vec<u64> = occurrence_maps
                    .iter()
                    .map(|m| m.get(&posting.0).copied().unwrap_or(0))
                    .collect();
                let total_keywords = posting.2;
                let score = score_of(&occurrences, total_keywords, &idf);
                queue.push(Candidate {
                    group,
                    lo: position,
                    hi: position,
                    occurrences,
                    total_keywords,
                    score,
                });
                return true;
            }
        };

        let mut absorbed: HashSet<(Vec<Value>, usize)> = HashSet::new();
        let mut output_intervals: HashMap<Vec<Value>, Vec<(usize, usize)>> = HashMap::new();
        let mut output: Vec<SearchHit> = Vec::new();

        loop {
            while queue
                .peek()
                .is_none_or(|head| head.score < frontier_bound(&cursors))
            {
                if !seed_one(&mut cursors, &mut seeded, &mut queue) {
                    break;
                }
            }
            let Some(candidate) = queue.pop() else {
                break;
            };
            if output.len() >= request.k {
                break;
            }
            if candidate.lo == candidate.hi
                && absorbed.contains(&(candidate.group.clone(), candidate.lo))
            {
                continue;
            }
            if let Some(intervals) = output_intervals.get(&candidate.group) {
                if intervals
                    .iter()
                    .any(|&(lo, hi)| candidate.lo <= hi && lo <= candidate.hi)
                {
                    continue;
                }
            }

            let group_nodes = &index.groups[&candidate.group];
            let can_grow_left = candidate.lo > 0;
            let can_grow_right = candidate.hi + 1 < group_nodes.len();
            let expandable =
                candidate.total_keywords < request.min_size && (can_grow_left || can_grow_right);

            if !expandable {
                if let Some(hit) = to_hit(app, index, &candidate, group_nodes) {
                    output_intervals
                        .entry(candidate.group.clone())
                        .or_default()
                        .push((candidate.lo, candidate.hi));
                    output.push(hit);
                }
                continue;
            }

            let neighbor_relevance = |pos: usize| -> u64 {
                let id = &group_nodes[pos].id;
                occurrence_maps
                    .iter()
                    .map(|m| m.get(id).copied().unwrap_or(0))
                    .sum()
            };
            let go_left = match (can_grow_left, can_grow_right) {
                (true, false) => true,
                (false, true) => false,
                (true, true) => {
                    neighbor_relevance(candidate.lo - 1) > neighbor_relevance(candidate.hi + 1)
                }
                (false, false) => unreachable!("expandable implies a neighbor"),
            };
            let new_pos = if go_left {
                candidate.lo - 1
            } else {
                candidate.hi + 1
            };
            let neighbor = &group_nodes[new_pos];
            let mut expanded = candidate.clone();
            if go_left {
                expanded.lo = new_pos;
            } else {
                expanded.hi = new_pos;
            }
            for (i, m) in occurrence_maps.iter().enumerate() {
                expanded.occurrences[i] += m.get(&neighbor.id).copied().unwrap_or(0);
            }
            expanded.total_keywords += neighbor.total_keywords;
            expanded.score = score_of(&expanded.occurrences, expanded.total_keywords, &idf);
            absorbed.insert((candidate.group.clone(), new_pos));
            queue.push(expanded);
        }

        output
    }

    fn to_hit(
        app: &WebApplication,
        index: &SeedIndex,
        candidate: &Candidate,
        group_nodes: &[Node],
    ) -> Option<SearchHit> {
        let range_pos = index.range_position;
        let mut params = ParamValues::new();
        let mut group_iter = candidate.group.iter();
        for (i, sel) in app.query.selections.iter().enumerate() {
            match (&sel.binding, range_pos) {
                (SelectionBinding::RangeParams { low, high }, Some(pos)) if pos == i => {
                    let lo_val = group_nodes[candidate.lo].id.values()[pos].clone();
                    let hi_val = group_nodes[candidate.hi].id.values()[pos].clone();
                    params.insert(low.clone(), lo_val);
                    params.insert(high.clone(), hi_val);
                }
                (SelectionBinding::EqParam(p), _) => {
                    let value = group_iter.next()?.clone();
                    params.insert(p.clone(), value);
                }
                (SelectionBinding::EqConst(_), _) => {
                    let _ = group_iter.next()?;
                }
                (SelectionBinding::RangeParams { .. }, _) => return None,
            }
        }
        let query_string = app.reverse_query_string(&params).ok()?;
        let url = app.render_suggestion(&query_string.to_string());
        Some(SearchHit {
            url,
            query_string: query_string.to_string(),
            score: candidate.score,
            size: candidate.total_keywords,
            fragment_ids: group_nodes[candidate.lo..=candidate.hi]
                .iter()
                .map(|n| n.id.clone())
                .collect(),
        })
    }
}

fn assert_golden(app: &WebApplication, db: &Database, keywords: &[String]) {
    let fragments = reference::fragments(app, db).unwrap();
    let seed_index = seed_reference::build(&fragments, app.query.range_selection_index());
    let engine = DashEngine::build(app, db, &DashConfig::default()).unwrap();
    for word in keywords {
        for s in [1u64, 10, 100, 1000] {
            for k in [1usize, 2, 5, 10] {
                let request = SearchRequest::new(&[word.as_str()]).k(k).min_size(s);
                let handle_hits = engine.search(&request);
                let seed_hits = seed_reference::top_k(app, &seed_index, &request);
                assert_eq!(
                    handle_hits, seed_hits,
                    "divergence for keyword={word} s={s} k={k}"
                );
            }
        }
    }
    // Multi-keyword requests exercise the occurrence pool rows.
    if keywords.len() >= 2 {
        let pair = [keywords[0].as_str(), keywords[1].as_str()];
        for s in [1u64, 100] {
            let request = SearchRequest::new(&pair).k(10).min_size(s);
            assert_eq!(
                engine.search(&request),
                seed_reference::top_k(app, &seed_index, &request),
                "divergence for pair {pair:?} s={s}"
            );
        }
    }
}

/// Keyword picks per temperature class: hottest, middle and coldest of
/// the df ranking, plus an unknown keyword.
fn temperature_keywords(engine: &DashEngine) -> Vec<String> {
    let ranked = engine.index().inverted.keywords_by_df();
    let n = ranked.len();
    let mut picks: Vec<String> = Vec::new();
    for idx in [0, 1, n / 2, n / 2 + 1, n - 2, n - 1] {
        if idx < n {
            picks.push(ranked[idx].0.to_string());
        }
    }
    picks.push("zzz-unknown-keyword".to_string());
    picks.dedup();
    picks
}

#[test]
fn fooddb_matches_seed_search_exactly() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let keywords: Vec<String> = ["burger", "fries", "coffee", "thai", "american", "nice"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_golden(&app, &db, &keywords);
}

#[test]
fn fooddb_example_7_exact_hits() {
    // The paper's Example 7, pinned: both engines must produce these two
    // URLs for burger, k=2, s=20.
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
    let hits = engine.search(&SearchRequest::new(&["burger"]).k(2).min_size(20));
    let urls: Vec<&str> = hits.iter().map(|h| h.url.as_str()).collect();
    assert!(urls.contains(&"www.example.com/Search?c=American&l=10&u=12"));
    assert!(urls.contains(&"www.example.com/Search?c=Thai&l=10&u=10"));
}

#[test]
fn tpch_q2_matches_seed_search_across_temperatures() {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 60;
    config.base_parts = 80;
    let db = generate(&config);
    let app = dash_tpch::q2_application(&db).unwrap();
    let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
    let keywords = temperature_keywords(&engine);
    assert_golden(&app, &db, &keywords);
}

#[test]
fn catalog_roundtrips_every_fragment() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let fragments = reference::fragments(&app, &db).unwrap();
    let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
    let catalog = &engine.index().catalog;
    assert_eq!(catalog.len(), fragments.len());
    for f in &fragments {
        let frag = catalog.frag(&f.id).expect("interned");
        assert_eq!(catalog.id(frag), &f.id, "id → handle → id roundtrip");
        assert_eq!(catalog.total_keywords(frag), f.total_keywords);
        assert_eq!(catalog.record_count(frag), f.record_count);
    }
}
