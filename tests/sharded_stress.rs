//! Concurrency stress: many threads issuing mixed `search` /
//! `search_many` traffic against one shared `ShardedEngine`. The engine
//! must stay consistent under contention on its per-shard
//! `parking_lot` scratch pools — every thread must observe exactly the
//! single-engine results on every call, with no panics.

use std::sync::Arc;
use std::thread;

use dash::core::crawl::reference;
use dash::core::{DashEngine, IngestSource, SearchRequest, ShardedEngine};
use dash::mapreduce::WorkflowStats;
use dash::webapp::fooddb;
use dash_tpch::{generate, Scale, TpchConfig};

fn q2_engine_pair(shards: usize) -> (DashEngine, ShardedEngine, Vec<String>) {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 50;
    config.base_parts = 60;
    let db = generate(&config);
    let app = dash_tpch::q2_application(&db).expect("Q2 analyzes");
    let fragments = reference::fragments(&app, &db).expect("crawl");
    let single = DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).unwrap();
    let sharded = ShardedEngine::builder(app)
        .shards(shards)
        .source(IngestSource::Fragments(&fragments))
        .build()
        .unwrap();
    let keywords: Vec<String> = single
        .index()
        .inverted
        .keywords_by_df()
        .iter()
        .step_by(7)
        .take(8)
        .map(|(w, _)| w.to_string())
        .collect();
    (single, sharded, keywords)
}

#[test]
fn mixed_concurrent_traffic_stays_consistent() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 25;

    let (single, sharded, keywords) = q2_engine_pair(4);
    let requests: Vec<SearchRequest> = keywords
        .iter()
        .enumerate()
        .map(|(i, w)| {
            SearchRequest::new(&[w.as_str()])
                .k(1 + i % 7)
                .min_size([1u64, 50, 500][i % 3])
        })
        .collect();
    // Ground truth computed once, single-threaded, on the single engine.
    let expected: Vec<_> = requests.iter().map(|r| single.search(r)).collect();
    let expected_batch = expected.clone();

    let sharded = Arc::new(sharded);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let sharded = Arc::clone(&sharded);
            let requests = requests.clone();
            let expected = expected.clone();
            let expected_batch = expected_batch.clone();
            thread::spawn(move || {
                for round in 0..ROUNDS {
                    if (t + round) % 2 == 0 {
                        // Single-request traffic, rotating through the mix.
                        let i = (t * 31 + round * 7) % requests.len();
                        let hits = sharded.search(&requests[i]);
                        assert_eq!(
                            hits, expected[i],
                            "thread {t} round {round} request {i} diverged"
                        );
                    } else {
                        // Batched traffic over the whole mix.
                        let batch = sharded.search_many(&requests);
                        assert_eq!(batch.len(), requests.len());
                        for (i, hits) in batch.iter().enumerate() {
                            assert_eq!(
                                hits, &expected_batch[i],
                                "thread {t} round {round} batched request {i} diverged"
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("stress thread panicked");
    }
}

#[test]
fn concurrent_searches_share_scratch_pools() {
    // Hammer one request shape from many threads: the per-shard pools
    // hand scratches back and forth; results must never vary.
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let fragments = reference::fragments(&app, &db).unwrap();
    let single = DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).unwrap();
    let sharded = Arc::new(
        ShardedEngine::builder(app)
            .shards(2)
            .source(IngestSource::Fragments(&fragments))
            .build()
            .unwrap(),
    );
    let request = SearchRequest::new(&["burger"]).k(2).min_size(20);
    let expected = single.search(&request);

    let handles: Vec<_> = (0..12)
        .map(|_| {
            let sharded = Arc::clone(&sharded);
            let request = request.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                for _ in 0..50 {
                    assert_eq!(sharded.search(&request), expected);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("worker panicked");
    }
}
