//! Search-quality comparison: Dash's fragment-based search vs the naive
//! all-pages baseline — the redundancy argument of Section I/IV,
//! quantified on the running example and TPC-H.

use dash::core::baseline::NaiveEngine;
use dash::core::{DashConfig, DashEngine, SearchRequest};
use dash::tpch::{generate, Scale, TpchConfig};
use dash::webapp::fooddb;

/// Example 1's complaint, reproduced: for "burger" the naive engine
/// returns P1-style and P2-style pages together even though the larger
/// page adds no new "burger" content; Dash returns disjoint pages only.
#[test]
fn naive_returns_redundant_pages_dash_does_not() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let dash = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
    let naive = NaiveEngine::build(&app, &db, 100_000).unwrap();

    let request = SearchRequest::new(&["burger"]).k(10).min_size(1);
    let naive_hits = naive.search(&request);
    let dash_hits = dash.search(&request);

    // The naive engine floods the result list with overlapping American
    // pages (every interval covering budget 10 or 12 qualifies).
    let naive_american = naive_hits
        .iter()
        .filter(|h| h.url.contains("c=American"))
        .count();
    assert!(
        naive_american > 3,
        "expected redundant overlapping pages, got {naive_american}"
    );

    // Dash returns at most one page per disjoint fragment region: the
    // American hits never share a fragment.
    let mut seen = std::collections::HashSet::new();
    for h in &dash_hits {
        for id in &h.fragment_ids {
            assert!(seen.insert(id.clone()));
        }
    }
}

/// Both engines agree on *what* is relevant (same top page content for a
/// specific keyword) even though the naive one is unusable at scale.
#[test]
fn engines_agree_on_top_content() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let dash = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
    let naive = NaiveEngine::build(&app, &db, 100_000).unwrap();

    // "coffee" exists only in (American, 9).
    let request = SearchRequest::new(&["coffee"]).k(1).min_size(1);
    let d = &dash.search(&request)[0];
    let n = &naive.search(&request)[0];
    assert_eq!(d.url, n.url);
    // Scores agree on TF but not IDF: Dash approximates IDF over
    // *fragments* (1 here) where the baseline counts covering *pages*
    // (several) — exactly the approximation Section VI describes.
    assert!(d.score > 0.0 && n.score > 0.0);
    assert!(d.score >= n.score);
}

/// The naive page space explodes quadratically while fragments stay
/// linear — measured on TPC-H Q1.
#[test]
fn naive_page_space_explodes() {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 120;
    config.base_parts = 130;
    let db = generate(&config);
    let app = dash::tpch::q1_application(&db).unwrap();
    let fragments = dash::core::crawl::reference::fragments(&app, &db).unwrap();
    let naive = NaiveEngine::from_fragments(app.clone(), &fragments, 5_000_000).unwrap();
    let stats = naive.stats();
    assert!(
        stats.pages > 4 * fragments.len(),
        "pages {} should dwarf fragments {}",
        stats.pages,
        fragments.len()
    );
}

/// Dash's size threshold semantics (Section VI-B): every returned page
/// either meets the threshold `s` or has exhausted its equality group
/// (no fragment left to absorb).
#[test]
fn size_threshold_contract() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
    let range_pos = engine.index().graph.range_position().unwrap();
    for s in [1u64, 10, 25, 40, 1000] {
        for hit in engine.search(&SearchRequest::new(&["burger"]).k(5).min_size(s)) {
            if hit.size < s {
                let group_key = hit.fragment_ids[0].without(range_pos);
                let group = engine.index().graph.group_by_key(&group_key).unwrap();
                let group_len = engine.index().graph.group_nodes(group).len();
                assert_eq!(
                    hit.fragment_ids.len(),
                    group_len,
                    "s={s}: undersized page {} did not exhaust its group",
                    hit.url
                );
            }
        }
    }
}

/// IDF favors rare keywords: a fragment matching a rare keyword outranks
/// an equally dense fragment matching a common one.
#[test]
fn idf_prefers_rare_keywords() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
    // "fries" appears in 1 fragment, "burger" in 3.
    assert!(engine.index().inverted.idf("fries") > engine.index().inverted.idf("burger"));
    let fries = engine.search(&SearchRequest::new(&["fries"]).k(1).min_size(1));
    assert_eq!(fries.len(), 1);
    assert!(fries[0].url.contains("l=12&u=12"));
}
