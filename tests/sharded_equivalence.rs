//! The sharded-equivalence test tier: `ShardedEngine` must return
//! **byte-identical** `SearchHit` lists to `DashEngine` over the same
//! fragments, for every shard count — the correctness contract the
//! whole shard layer rests on (exact tie-breaking, score-equal hits and
//! per-shard lazy seeding are all places a sharded ranker can silently
//! diverge).
//!
//! Three layers of evidence:
//!
//! * golden datasets — the paper's running example (fooddb) and the
//!   TPC-H Q2 micro workload, shard counts 1–8, hot/cold keywords;
//! * property tests — random fragment sets, random keyword mixes,
//!   random `k`/`s`, shard counts {1, 2, 3, 8};
//! * environment axis — when `DASH_SHARDS` is set (the CI matrix runs
//!   the suite under `DASH_SHARDS=1` and `DASH_SHARDS=4`), that count
//!   joins every comparison.

use std::collections::BTreeMap;

use proptest::prelude::*;

use dash::core::crawl::reference;
use dash::core::{
    env_shards, DashConfig, DashEngine, Fragment, FragmentId, IngestSource, SearchRequest,
    ShardedEngine,
};
use dash::mapreduce::WorkflowStats;
use dash::relation::Value;
use dash::webapp::{fooddb, WebApplication};
use dash_tpch::{generate, Scale, TpchConfig};

/// The shard counts every comparison runs: 1–8 plus the environment's
/// `DASH_SHARDS`, if any.
fn shard_counts() -> Vec<usize> {
    let mut counts: Vec<usize> = (1..=8).collect();
    if let Some(n) = env_shards() {
        if !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

fn assert_equivalent(
    app: &WebApplication,
    fragments: &[Fragment],
    requests: &[SearchRequest],
    context: &str,
) {
    let single = DashEngine::from_fragments(app.clone(), fragments, WorkflowStats::new())
        .expect("single engine builds");
    for shards in shard_counts() {
        let sharded = ShardedEngine::builder(app.clone())
            .shards(shards)
            .source(IngestSource::Fragments(fragments))
            .build()
            .expect("sharded engine builds");
        for request in requests {
            assert_eq!(
                sharded.search(request),
                single.search(request),
                "{context}: shards={shards} keywords={:?} k={} s={}",
                request.keywords,
                request.k,
                request.min_size
            );
        }
        // The batched path must agree with itself and with the single
        // engine, request for request.
        let batch = sharded.search_many(requests);
        let single_batch = single.search_many(requests);
        for ((request, sharded_hits), single_hits) in requests.iter().zip(&batch).zip(&single_batch)
        {
            assert_eq!(
                sharded_hits, single_hits,
                "{context} (batched): shards={shards} keywords={:?}",
                request.keywords
            );
        }
    }
}

#[test]
fn golden_fooddb_all_shard_counts() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let fragments = reference::fragments(&app, &db).unwrap();
    let requests = vec![
        SearchRequest::new(&["burger"]).k(2).min_size(20),
        SearchRequest::new(&["burger"]).k(3).min_size(1),
        SearchRequest::new(&["burger"]).k(1).min_size(10_000),
        SearchRequest::new(&["burger", "fries"]).k(2).min_size(1),
        SearchRequest::new(&["american"]).k(10).min_size(1),
        SearchRequest::new(&["thai", "burger"]).k(5).min_size(5),
        SearchRequest::new(&["zzzqqq"]).k(5).min_size(1),
    ];
    assert_equivalent(&app, &fragments, &requests, "fooddb");
}

#[test]
fn golden_tpch_q2_all_shard_counts() {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 60;
    config.base_parts = 80;
    let db = generate(&config);
    let app = dash_tpch::q2_application(&db).expect("Q2 analyzes");
    let fragments = reference::fragments(&app, &db).expect("crawl");

    // Keyword temperatures straight from the data: hottest, middling,
    // rarest — plus a multi-keyword mix and a miss.
    let single = DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).unwrap();
    let ranked = single.index().inverted.keywords_by_df();
    assert!(ranked.len() >= 3, "Q2 corpus has keywords");
    let hot = ranked[0].0.to_string();
    let warm = ranked[ranked.len() / 2].0.to_string();
    let cold = ranked[ranked.len() - 1].0.to_string();
    let requests = vec![
        SearchRequest::new(&[&hot]).k(10).min_size(100),
        SearchRequest::new(&[&hot]).k(10).min_size(1000),
        SearchRequest::new(&[&warm]).k(5).min_size(100),
        SearchRequest::new(&[&cold]).k(3).min_size(1),
        SearchRequest::new(&[&hot, &warm]).k(10).min_size(200),
        SearchRequest::new(&[&hot, &cold, &warm]).k(7).min_size(50),
        SearchRequest::new(&["nosuchkeyword"]).k(4).min_size(10),
    ];
    assert_equivalent(&app, &fragments, &requests, "tpch-q2");
}

#[test]
fn sharded_engine_crawl_build_matches_single() {
    // End-to-end parity: both engines crawl the database themselves.
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let single = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
    let sharded = ShardedEngine::builder(app.clone())
        .shards(3)
        .source(IngestSource::Crawl {
            db: &db,
            config: &DashConfig::default(),
        })
        .build()
        .unwrap();
    assert_eq!(sharded.fragment_count(), single.fragment_count());
    assert!(sharded.crawl_stats().sim_total_secs() > 0.0);
    let req = SearchRequest::new(&["burger"]).k(2).min_size(20);
    assert_eq!(sharded.search(&req), single.search(&req));
}

// ---------------------------------------------------------------------
// Property tests: random datasets, keywords and shard counts.
// ---------------------------------------------------------------------

const EQ_KEYS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
const VOCAB: [&str; 10] = [
    "burger", "fries", "noodle", "spicy", "fresh", "crispy", "sweet", "salty", "ghost", "phantom",
];

/// One generated fragment: an equality key, a range value, and keyword
/// occurrences drawn from the first 8 vocabulary words ("ghost" and
/// "phantom" only ever appear in *queries*, covering the
/// unknown-keyword path).
#[derive(Debug, Clone)]
struct GenFragment {
    eq: usize,
    range: i64,
    words: Vec<(usize, u64)>,
}

fn fragment_strategy() -> impl Strategy<Value = GenFragment> {
    (
        0..EQ_KEYS.len(),
        0i64..15,
        prop::collection::vec((0usize..8, 1u64..5), 0..4),
    )
        .prop_map(|(eq, range, words)| GenFragment { eq, range, words })
}

/// Materializes generated rows into unique fragments (first occurrence
/// of an identifier wins, like a crawl's distinct output).
fn materialize(rows: &[GenFragment]) -> Vec<Fragment> {
    let mut seen = std::collections::HashSet::new();
    let mut fragments = Vec::new();
    for row in rows {
        let id = FragmentId::new(vec![Value::str(EQ_KEYS[row.eq]), Value::Int(row.range)]);
        if !seen.insert(id.clone()) {
            continue;
        }
        let mut occ: BTreeMap<String, u64> = BTreeMap::new();
        for &(w, n) in &row.words {
            *occ.entry(VOCAB[w].to_string()).or_insert(0) += n;
        }
        fragments.push(Fragment::new(id, occ, 1));
    }
    fragments
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The core contract: for random datasets, random keyword queries
    /// and shard counts {1, 2, 3, 8} (plus `DASH_SHARDS`), the sharded
    /// hit lists are byte-identical to the single engine's.
    #[test]
    fn sharded_matches_single_on_random_data(
        rows in prop::collection::vec(fragment_strategy(), 1..45),
        query in prop::collection::vec(0usize..VOCAB.len(), 1..4),
        k in 1usize..12,
        s in prop::sample::select(vec![1u64, 3, 10, 50]),
        shards in prop::sample::select(vec![1usize, 2, 3, 8]),
    ) {
        let app = fooddb::search_application().unwrap();
        let fragments = materialize(&rows);
        let keywords: Vec<&str> = query.iter().map(|&w| VOCAB[w]).collect();
        let request = SearchRequest::new(&keywords).k(k).min_size(s);

        let single =
            DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).unwrap();
        let mut counts = vec![shards];
        if let Some(n) = env_shards() {
            counts.push(n);
        }
        for shards in counts {
            let sharded =
                ShardedEngine::builder(app.clone()).shards(shards).source(IngestSource::Fragments(&fragments)).build()
                    .unwrap();
            prop_assert_eq!(
                sharded.search(&request),
                single.search(&request),
                "shards={} fragments={} keywords={:?} k={} s={}",
                shards,
                fragments.len(),
                keywords,
                k,
                s
            );
        }
    }

    /// Batched search over random request mixes agrees with sequential
    /// single-request search on both engines.
    #[test]
    fn search_many_matches_search_on_random_batches(
        rows in prop::collection::vec(fragment_strategy(), 5..40),
        queries in prop::collection::vec(
            (prop::collection::vec(0usize..VOCAB.len(), 1..3), 1usize..8),
            1..5
        ),
        shards in prop::sample::select(vec![1usize, 2, 3, 8]),
    ) {
        let app = fooddb::search_application().unwrap();
        let fragments = materialize(&rows);
        let requests: Vec<SearchRequest> = queries
            .iter()
            .map(|(words, k)| {
                let keywords: Vec<&str> = words.iter().map(|&w| VOCAB[w]).collect();
                SearchRequest::new(&keywords).k(*k).min_size(10)
            })
            .collect();
        let single =
            DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).unwrap();
        let sharded =
            ShardedEngine::builder(app).shards(shards).source(IngestSource::Fragments(&fragments)).build().unwrap();
        let batch = sharded.search_many(&requests);
        prop_assert_eq!(batch.len(), requests.len());
        for (request, hits) in requests.iter().zip(&batch) {
            prop_assert_eq!(hits, &sharded.search(request));
            prop_assert_eq!(hits, &single.search(request));
        }
    }
}
