//! The wire-codec test tier: arbitrary maintenance values —
//! [`IndexDelta`], [`DeltaSignature`], [`RecordChange`] batches —
//! survive encode→decode identically, and the encoding is canonical
//! (encode∘decode∘encode is byte-stable). Fragments are drawn from the
//! same (eq-key, range, word-bag) generator shape the
//! `sharded_maintenance` tier uses, so the values exercised here are
//! exactly the values the delta write path ships in production.

use std::collections::BTreeMap;

use proptest::prelude::*;

use dash::core::wire;
use dash::prelude::*;
use dash::relation::{Date, Decimal};

const EQ_KEYS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
const VOCAB: [&str; 8] = [
    "burger", "fries", "noodle", "spicy", "fresh", "crispy", "sweet", "salty",
];

/// One generated fragment row (the `sharded_maintenance` shape).
#[derive(Debug, Clone)]
struct GenFragment {
    eq: usize,
    range: i64,
    words: Vec<(usize, u64)>,
}

impl GenFragment {
    fn id(&self) -> FragmentId {
        FragmentId::new(vec![Value::str(EQ_KEYS[self.eq]), Value::Int(self.range)])
    }

    fn materialize(&self) -> Fragment {
        let mut occ: BTreeMap<String, u64> = BTreeMap::new();
        for &(w, n) in &self.words {
            *occ.entry(VOCAB[w].to_string()).or_insert(0) += n;
        }
        Fragment::new(self.id(), occ, 1)
    }
}

fn fragment_strategy() -> impl Strategy<Value = GenFragment> {
    (
        0..EQ_KEYS.len(),
        0i64..12,
        prop::collection::vec((0usize..VOCAB.len(), 1u64..5), 1..4),
    )
        .prop_map(|(eq, range, words)| GenFragment { eq, range, words })
}

fn delta_strategy() -> impl Strategy<Value = IndexDelta> {
    (
        prop::collection::vec(fragment_strategy(), 0..5),
        prop::collection::vec(fragment_strategy(), 0..5),
    )
        .prop_map(|(removes, adds)| {
            IndexDelta::new(
                removes.iter().map(GenFragment::id).collect(),
                adds.iter().map(GenFragment::materialize).collect(),
            )
        })
}

fn changes_strategy() -> impl Strategy<Value = Vec<RecordChange>> {
    prop::collection::vec((0..EQ_KEYS.len(), 0i64..100, 0u8..5), 0..6).prop_map(|rows| {
        rows.into_iter()
            .map(|(rel, key, flavor)| {
                // Mix every Value variant through the record codec.
                let record = Record::new(vec![
                    Value::Int(key),
                    match flavor {
                        0 => Value::Null,
                        1 => Value::str(EQ_KEYS[rel]),
                        2 => Value::Decimal(Decimal::from_cents(key * 7 - 350)),
                        3 => Value::Date(Date::new(2012, 1 + (key % 12) as u8, 18)),
                        _ => Value::Int(-key),
                    },
                ]);
                RecordChange::new(EQ_KEYS[rel], record)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deltas_roundtrip_identically(delta in delta_strategy()) {
        let bytes = wire::encode_delta(&delta);
        let back = wire::read_delta(bytes.as_slice()).unwrap();
        prop_assert_eq!(&back, &delta);
        // Canonical: re-encoding is byte-identical.
        prop_assert_eq!(wire::encode_delta(&back), bytes);
    }

    #[test]
    fn signatures_roundtrip_identically(delta in delta_strategy()) {
        // Signatures derived at both range positions (the realistic
        // shapes: no range column, range at slot 1).
        for range_position in [None, Some(1)] {
            let signature = delta.signature(range_position);
            let bytes = wire::encode_signature(&signature);
            let back = wire::read_signature(bytes.as_slice()).unwrap();
            prop_assert_eq!(&back, &signature);
            prop_assert_eq!(wire::encode_signature(&back), bytes);
        }
    }

    #[test]
    fn change_batches_roundtrip_identically(changes in changes_strategy()) {
        let mut bytes = Vec::new();
        wire::write_changes(&mut bytes, &changes).unwrap();
        let back = wire::read_changes(bytes.as_slice()).unwrap();
        prop_assert_eq!(back, changes);
    }

    #[test]
    fn truncation_never_panics_and_always_errors(delta in delta_strategy(), cut in 0usize..64) {
        let bytes = wire::encode_delta(&delta);
        let cut = cut.min(bytes.len().saturating_sub(1));
        prop_assert!(wire::read_delta(&bytes[..cut]).is_err());
    }
}
