//! The observability tier: the `dash-obs` contracts the serving
//! layers now depend on.
//!
//! * histogram percentiles are *exact* in the nearest-rank sense —
//!   against a sorted-vector oracle, `quantile(q)` is always the
//!   lower bound of the bucket holding the true ranked sample, and
//!   merging split snapshots loses nothing;
//! * counters are lock-free and monotone under 8-thread contention;
//! * the `GET /metrics` exposition a real socket front-end serves is
//!   valid (parseable, no duplicate series) and covers every layer —
//!   net, serve and shard series in one scrape;
//! * the slow-query log captures an injected slow request and blames
//!   the right stage (`handle`, where the injected sleep ran);
//! * instrumentation never changes a result byte: searches through a
//!   recording server equal a fresh engine's, in-process and over
//!   HTTP, with the registry enabled and disabled.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dash::obs::hist::{bucket_index, bucket_lower_bound};
use dash::obs::{expo, Histogram};
use dash::prelude::*;
use dash::webapp::fooddb;
use proptest::prelude::*;

fn serve(config: NetConfig) -> (Arc<DashServer>, NetServer) {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let server = Arc::new(
        DashServer::build(
            &app,
            &db,
            &DashConfig::default(),
            ServeConfig::default().shards(2),
        )
        .unwrap(),
    );
    let net = NetServer::serve_primary(
        Arc::clone(&server),
        db,
        TcpListener::bind("127.0.0.1:0").unwrap(),
        config,
    )
    .unwrap();
    (server, net)
}

/// Nearest-rank oracle over the raw samples (the definition
/// `HistogramSnapshot::quantile` implements over buckets).
fn oracle(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Histogram percentiles equal the sorted-vector oracle up to the
    /// bucket representative: `quantile(q)` is exactly the lower
    /// bound of the bucket the true ranked sample lands in, at every
    /// exposed quantile, over the full `u64` domain. Splitting the
    /// samples across two histograms and merging their snapshots
    /// changes nothing.
    #[test]
    fn percentiles_match_the_sorted_oracle(
        samples in prop::collection::vec(any::<u64>(), 1..300)
    ) {
        let whole = Histogram::new();
        let left = Histogram::new();
        let right = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 { left.record(v) } else { right.record(v) }
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let snap = whole.snapshot();
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(merged.count(), samples.len() as u64);
        prop_assert_eq!(merged.sum(), snap.sum());
        for q in [0.5, 0.9, 0.99, 0.999] {
            let want = bucket_lower_bound(bucket_index(oracle(&sorted, q)));
            prop_assert_eq!(snap.quantile(q), want, "q={}", q);
            prop_assert_eq!(merged.quantile(q), want, "merged q={}", q);
        }
    }
}

#[test]
fn counters_are_monotone_under_contention() {
    const THREADS: usize = 8;
    const INCS: u64 = 10_000;
    let registry = dash::obs::Registry::new();
    let counter = registry.counter("dash_test_contended_total");
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                for _ in 0..INCS {
                    counter.inc();
                }
            });
        }
        let counter = Arc::clone(&counter);
        let done = &done;
        scope.spawn(move || {
            // A concurrent reader must only ever see the count grow.
            let mut last = 0u64;
            while !done.load(Ordering::Relaxed) {
                let now = counter.get();
                assert!(now >= last, "counter went backwards: {last} -> {now}");
                last = now;
            }
        });
        // scope joins the writers after this block; flag the reader
        // down once the writers are spawned and this thread has
        // nothing left to do but wait for them — the reader rechecks
        // until every writer finished.
        done.store(true, Ordering::Relaxed);
    });
    assert_eq!(counter.get(), THREADS as u64 * INCS);
}

#[test]
fn the_metrics_exposition_is_valid_and_covers_every_layer() {
    let (server, net) = serve(NetConfig::default());
    let mut client = NetClient::connect(net.addr()).unwrap();
    // Three *distinct* searches — identical ones would be answered
    // from the response cache after the first and never reach the
    // serve layer's histograms.
    for k in 1..=3 {
        client
            .search(&SearchRequest::new(&["burger"]).k(k).min_size(20))
            .unwrap();
    }
    client
        .publish(&IndexDelta::adding(vec![Fragment::new(
            FragmentId::new(vec![Value::str("Nordic"), Value::Int(7)]),
            [("herring".to_string(), 3u64)].into_iter().collect(),
            1,
        )]))
        .unwrap();
    let text = client.metrics_text().unwrap();

    // Every layer shows up in one scrape.
    for series in [
        "dash_net_accepted_total",
        "dash_net_open_connections",
        "dash_net_request_ns",
        "dash_net_handle_ns",
        "dash_serve_searches_total",
        "dash_serve_published_total",
        "dash_serve_search_ns",
        "dash_shard_search_ns",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }

    // Exposition validity: every sample line parses, TYPE lines name
    // a known kind, and no series key repeats.
    let mut seen = std::collections::BTreeSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let kind = rest.split(' ').nth(1).unwrap_or("");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary"),
                "unknown TYPE: {line}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        let (key, value) = line.rsplit_once(' ').expect("sample line has a value");
        value.parse::<u64>().expect("sample values are integers");
        assert!(seen.insert(key.to_string()), "duplicate series: {key}");
    }

    // The parsed summaries agree with what the run did: requests
    // flowed end to end and the serving stack recorded them.
    let summaries = expo::parse_summaries(&text);
    let series = |name: &str| {
        summaries
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no summary {name}"))
            .clone()
    };
    assert!(series("dash_net_request_ns").count >= 4, "{text}");
    assert!(series("dash_serve_search_ns").count >= 3, "{text}");
    let served = series("dash_net_request_ns");
    assert!(served.p999 >= served.p99 && served.p99 >= served.p50);
    // Registry-backed /stats and /metrics agree on the search count.
    assert_eq!(
        server.stats().searches,
        server.registry().counter("dash_serve_searches_total").get()
    );
}

#[test]
fn the_slow_log_captures_an_injected_stall_and_blames_handle() {
    let (_server, net) = serve(NetConfig {
        allow_debug_sleep: true,
        ..NetConfig::default()
    });
    // One deliberately slow request: the worker sleeps 25ms inside
    // the handle stage.
    let mut stream = TcpStream::connect(net.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            b"GET /stats?debug_sleep_us=25000 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    assert!(response.starts_with(b"HTTP/1.1 200"));

    let mut client = NetClient::connect(net.addr()).unwrap();
    let slow = client.slow_json().unwrap();
    let at = slow
        .find("\"route\":\"GET /stats\"")
        .unwrap_or_else(|| panic!("slow log missed the stalled request: {slow}"));
    // Extract that entry's handle-stage nanoseconds.
    let handle = &slow[at..];
    let handle = &handle[handle.find("\"handle\":").expect("stage breakdown") + 9..];
    let handle_ns: u64 = handle
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap();
    assert!(
        handle_ns >= 20_000_000,
        "injected 25ms stall attributed {handle_ns}ns to handle: {slow}"
    );
}

#[test]
fn instrumentation_never_changes_a_result_byte() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let engine = DashEngine::build(&app, &db, &DashConfig::default()).unwrap();
    let (server, net) = serve(NetConfig::default());
    let mut client = NetClient::connect(net.addr()).unwrap();
    let requests = [
        SearchRequest::new(&["burger"]).k(3).min_size(20),
        SearchRequest::new(&["burger", "fries"]).k(5).min_size(1),
        SearchRequest::new(&["thai"]).k(2).min_size(10),
    ];
    assert!(server.registry().is_enabled());
    for request in &requests {
        let want = engine.search(request);
        assert_eq!(server.search(request), want, "in-process, recording");
        assert_eq!(
            client.search(request).unwrap(),
            want,
            "over HTTP, recording"
        );
    }
    // Spans recorded something, and the disabled fast path answers
    // identically.
    assert!(server.registry().counter("dash_serve_searches_total").get() >= 3);
    server.registry().set_enabled(false);
    for request in &requests {
        assert_eq!(
            server.search(request),
            engine.search(request),
            "disabled registry"
        );
    }
    server.registry().set_enabled(true);
}
