//! The net test tier: the socket layer must be **invisible** in the
//! results. A hit list served over HTTP — parsed from the JSON body a
//! real TCP connection carried — is byte-identical to a fresh
//! `DashEngine::search` over the server's current fragments, whether
//! it came from the primary or from a replica that joined the
//! replication stream mid-history, across cache hits, concurrent
//! clients and concurrent delta publications, at shard counts {1, 4}.
//!
//! Failure coverage: killing the primary-side replication sockets
//! leaves the replica serving its last published snapshot
//! (stale-but-consistent — the battery still matches the pre-kill
//! state bit for bit, never a half-applied delta), and the replica
//! catches up through the primary's delta log when it reconnects —
//! without a second snapshot, since its epoch is still on the log.
//! The deeper fault matrix (torn frames, dropped frames, promotion,
//! routing) lives in `tests/net_failover.rs`.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use dash::core::crawl::reference;
use dash::mapreduce::WorkflowStats;
use dash::net::NetChange;
use dash::prelude::*;
use dash::webapp::fooddb;

const SHARD_COUNTS: [usize; 2] = [1, 4];
const SYNC_TIMEOUT: Duration = Duration::from_secs(20);

fn app() -> WebApplication {
    fooddb::search_application().unwrap()
}

fn fresh_single(fragments: &[Fragment]) -> DashEngine {
    DashEngine::from_fragments(app(), fragments, WorkflowStats::new()).unwrap()
}

fn crawled_fragments() -> Vec<Fragment> {
    let db = fooddb::database();
    reference::fragments(&app(), &db).unwrap()
}

/// A primary serving stack on ephemeral ports: the `DashServer`, its
/// HTTP front-end and its replication hub.
fn primary(fragments: &[Fragment], shards: usize) -> (Arc<DashServer>, NetServer, ReplicationHub) {
    let server = Arc::new(
        DashServer::from_fragments(app(), fragments, ServeConfig::default().shards(shards))
            .unwrap(),
    );
    let net = NetServer::serve_primary(
        Arc::clone(&server),
        fooddb::database(),
        TcpListener::bind("127.0.0.1:0").unwrap(),
        NetConfig::default(),
    )
    .unwrap();
    let hub = ReplicationHub::start(
        Arc::clone(&server),
        TcpListener::bind("127.0.0.1:0").unwrap(),
    )
    .unwrap();
    (server, net, hub)
}

/// The request battery every comparison runs (the serve tier's, minus
/// nothing — socket serving must pass the identical bar).
fn battery() -> Vec<SearchRequest> {
    let mut requests = Vec::new();
    for kw in ["burger", "fries", "coffee", "thai", "taco", "nice"] {
        for s in [1u64, 20, 60] {
            requests.push(SearchRequest::new(&[kw]).k(6).min_size(s));
        }
    }
    requests.push(SearchRequest::new(&["burger", "taco"]).k(8).min_size(10));
    requests.push(SearchRequest::new(&["zzzmissing"]).k(3).min_size(1));
    requests
}

/// Serves the battery through a socket twice (the repeat hits the
/// result cache) and requires byte-identity with the fresh engine.
fn assert_socket_equivalent(client: &mut NetClient, fresh: &DashEngine, context: &str) {
    let requests = battery();
    for pass in ["miss", "cached"] {
        for request in &requests {
            let expected = fresh.search(request);
            let served = client.search(request).unwrap();
            assert_eq!(
                served, expected,
                "{context}: pass={pass} keywords={:?} k={} s={}",
                request.keywords, request.k, request.min_size
            );
        }
    }
}

#[test]
fn http_served_results_match_fresh_engine_for_all_shard_counts() {
    let fragments = crawled_fragments();
    let fresh = fresh_single(&fragments);
    for shards in SHARD_COUNTS {
        let (_server, net, _hub) = primary(&fragments, shards);
        let mut client = NetClient::connect(net.addr()).unwrap();
        assert_socket_equivalent(&mut client, &fresh, &format!("shards={shards}"));
    }
}

#[test]
fn concurrent_socket_clients_get_identical_answers() {
    let fragments = crawled_fragments();
    let fresh = fresh_single(&fragments);
    let (_server, net, _hub) = primary(&fragments, 4);
    let requests = battery();
    let expected: Vec<_> = requests.iter().map(|r| fresh.search(r)).collect();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let requests = &requests;
            let expected = &expected;
            let addr = net.addr();
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                for (request, expected) in requests.iter().zip(expected) {
                    assert_eq!(
                        &client.search(request).unwrap(),
                        expected,
                        "concurrent socket client {t} keywords={:?}",
                        request.keywords
                    );
                }
            });
        }
    });
}

#[test]
fn http_updates_route_through_the_bulk_delta_path() {
    for shards in SHARD_COUNTS {
        let fragments = crawled_fragments();
        let (server, net, _hub) = primary(&fragments, shards);
        let mut client = NetClient::connect(net.addr()).unwrap();

        // Insert a new restaurant over the wire.
        let record = Record::new(vec![
            Value::Int(8),
            Value::str("Sushi Go"),
            Value::str("Japanese"),
            Value::Int(25),
            Value::str("4.9"),
        ]);
        let ack = client.insert("restaurant", record.clone()).unwrap();
        assert!(ack.added >= 1, "shards={shards}");
        assert_eq!(ack.epoch, 1);

        // The mutated database is the new ground truth.
        let mut db = fooddb::database();
        db.table_mut("restaurant")
            .unwrap()
            .insert(record.clone())
            .unwrap();
        let truth = DashEngine::build(&app(), &db, &DashConfig::default()).unwrap();
        let sushi = SearchRequest::new(&["sushi"]).k(3).min_size(1);
        assert_eq!(client.search(&sushi).unwrap(), truth.search(&sushi));
        assert_socket_equivalent(&mut client, &truth, &format!("shards={shards} post-insert"));

        // Delete it again over the wire: back to the original truth.
        let ack = client.delete("restaurant", record).unwrap();
        assert!(ack.removed >= 1);
        assert_eq!(ack.epoch, 2);
        let truth = fresh_single(&fragments);
        assert!(client.search(&sushi).unwrap().is_empty());
        assert_socket_equivalent(&mut client, &truth, &format!("shards={shards} post-delete"));
        assert_eq!(server.epoch(), 2);

        // A batch of changes is one publication (one bulk delta).
        let changes = vec![
            NetChange::Insert(RecordChange::new(
                "restaurant",
                Record::new(vec![
                    Value::Int(60),
                    Value::str("Bulk Bistro"),
                    Value::str("American"),
                    Value::Int(13),
                    Value::str("4.2"),
                ]),
            )),
            NetChange::Insert(RecordChange::new(
                "restaurant",
                Record::new(vec![
                    Value::Int(61),
                    Value::str("Batch Bar"),
                    Value::str("Korean"),
                    Value::Int(9),
                    Value::str("4.0"),
                ]),
            )),
        ];
        let ack = client.apply(changes).unwrap();
        assert_eq!(ack.epoch, 3, "a batch publishes once");
        assert!(ack.added >= 2);
    }
}

#[test]
fn failed_update_batches_leave_the_database_untouched() {
    // A batch that dies mid-way (unknown relation) must not leak its
    // earlier changes into the primary's database: nothing published
    // means the engine never saw them, and a half-applied db would
    // diverge from the engine forever.
    let fragments = crawled_fragments();
    let (server, net, _hub) = primary(&fragments, 2);
    let mut client = NetClient::connect(net.addr()).unwrap();
    let good = Record::new(vec![
        Value::Int(90),
        Value::str("Ghost Grill"),
        Value::str("American"),
        Value::Int(12),
        Value::str("4.0"),
    ]);
    let result = client.apply(vec![
        NetChange::Insert(RecordChange::new("restaurant", good.clone())),
        NetChange::Insert(RecordChange::new("no_such_relation", good.clone())),
    ]);
    assert!(result.is_err(), "the batch must be rejected");
    assert_eq!(server.epoch(), 0, "nothing published");
    // The rejected batch's first record must not have leaked: a
    // subsequent valid insert of the same record still works and the
    // result matches a truth database holding it exactly once.
    let ack = client.insert("restaurant", good.clone()).unwrap();
    assert!(ack.added >= 1);
    let mut db = fooddb::database();
    db.table_mut("restaurant").unwrap().insert(good).unwrap();
    let truth = DashEngine::build(&app(), &db, &DashConfig::default()).unwrap();
    let ghost = SearchRequest::new(&["ghost"]).k(3).min_size(1);
    assert_eq!(client.search(&ghost).unwrap(), truth.search(&ghost));
}

#[test]
fn dropping_one_replica_leaves_the_others_registered() {
    // Streamer cleanup must deregister exactly the dead connection
    // (accepted sockets all share the hub's local address; identity is
    // the peer address).
    let fragments = crawled_fragments();
    let (server, _net, hub) = primary(&fragments, 1);
    let a = Arc::new(Replica::connect(
        hub.addr(),
        app(),
        ReplicaConfig::default(),
    ));
    let b = Arc::new(Replica::connect(
        hub.addr(),
        app(),
        ReplicaConfig::default(),
    ));
    assert!(a.wait_ready(SYNC_TIMEOUT) && b.wait_ready(SYNC_TIMEOUT));
    assert_eq!(hub.replica_count(), 2);
    drop(b);
    // The dead socket is noticed at the next streamed delta.
    server.publish(IndexDelta::adding(vec![Fragment::new(
        FragmentId::new(vec![Value::str("Nordic"), Value::Int(7)]),
        [("herring".to_string(), 2u64)].into_iter().collect(),
        1,
    )]));
    let deadline = std::time::Instant::now() + SYNC_TIMEOUT;
    while hub.replica_count() != 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(hub.replica_count(), 1, "only the dead peer deregisters");
    // The survivor still receives the stream.
    assert!(a.wait_epoch(1, SYNC_TIMEOUT));
}

#[test]
fn replica_bootstrapped_from_arena_image_alone_serves_identical_bytes() {
    // The SNAPSHOT frame ships an arena image
    // (`ShardedEngine::write_image`); the replica reconstructs its
    // engine with `IngestSource::Image`, no parse-and-rebuild. This test keeps
    // the delta stream silent after the join, so every served byte is
    // evidence about the image path alone: one bootstrap, zero applied
    // deltas, and the battery byte-identical to a fresh engine over
    // the primary's current fragments.
    let base = crawled_fragments();
    for shards in SHARD_COUNTS {
        let (server, _net, hub) = primary(&base, shards);
        // Drift the primary BEFORE the replica exists, so the image
        // carries post-delta state a stale crawl could not fake.
        server.publish(IndexDelta::adding(vec![Fragment::new(
            FragmentId::new(vec![Value::str("Nordic"), Value::Int(7)]),
            [("herring".to_string(), 3u64)].into_iter().collect(),
            1,
        )]));

        let replica = Arc::new(Replica::connect(
            hub.addr(),
            app(),
            ReplicaConfig::default(),
        ));
        assert!(replica.wait_epoch(1, SYNC_TIMEOUT), "bootstrap reaches e1");
        assert_eq!(replica.bootstraps(), 1, "exactly one snapshot");
        assert_eq!(replica.deltas_applied(), 0, "image alone, no deltas");

        let replica_net = NetServer::serve_replica(
            Arc::clone(&replica),
            TcpListener::bind("127.0.0.1:0").unwrap(),
            NetConfig::default(),
        )
        .unwrap();
        let mut replica_client = NetClient::connect(replica_net.addr()).unwrap();
        let current: Vec<Fragment> = server
            .snapshot()
            .engine
            .dump_shards()
            .into_iter()
            .flatten()
            .collect();
        let truth = fresh_single(&current);
        assert_socket_equivalent(
            &mut replica_client,
            &truth,
            &format!("arena-image bootstrap shards={shards}"),
        );
        let herring = SearchRequest::new(&["herring"]).k(2).min_size(1);
        assert_eq!(
            replica_client.search(&herring).unwrap(),
            truth.search(&herring),
            "shards={shards} post-delta state came through the image"
        );
    }
}

#[test]
fn replica_joining_mid_stream_serves_identical_bytes() {
    let base = crawled_fragments();
    for shards in SHARD_COUNTS {
        let (server, net, hub) = primary(&base, shards);
        let mut client = NetClient::connect(net.addr()).unwrap();

        let fragment = |cuisine: &str, word: &str, n: u64| {
            Fragment::new(
                FragmentId::new(vec![Value::str(cuisine), Value::Int(7)]),
                [(word.to_string(), n)].into_iter().collect(),
                1,
            )
        };
        // Epoch 1 happens BEFORE the replica exists: it must arrive
        // via the bootstrap snapshot, not the delta stream.
        client
            .publish(&IndexDelta::adding(vec![fragment("Nordic", "herring", 3)]))
            .unwrap();

        let replica = Arc::new(Replica::connect(
            hub.addr(),
            app(),
            ReplicaConfig::default(),
        ));
        assert!(replica.wait_epoch(1, SYNC_TIMEOUT), "bootstrap reaches e1");
        let replica_net = NetServer::serve_replica(
            Arc::clone(&replica),
            TcpListener::bind("127.0.0.1:0").unwrap(),
            NetConfig::default(),
        )
        .unwrap();
        let mut replica_client = NetClient::connect(replica_net.addr()).unwrap();

        // Epochs 2 and 3 arrive over the delta stream (one through
        // the socket update path, one published in-process).
        client
            .publish(&IndexDelta::adding(vec![fragment("Basque", "txakoli", 2)]))
            .unwrap();
        server.publish(IndexDelta::new(
            vec![FragmentId::new(vec![Value::str("Nordic"), Value::Int(7)])],
            vec![fragment("Nordic", "herring", 9)],
        ));
        assert!(replica.wait_epoch(3, SYNC_TIMEOUT), "tail reaches e3");
        assert_eq!(replica.bootstraps(), 1, "joined once, no re-sync needed");
        assert_eq!(replica.deltas_applied(), 2);

        // Ground truth: a fresh single engine over the primary's
        // current fragments.
        let current: Vec<Fragment> = server
            .snapshot()
            .engine
            .dump_shards()
            .into_iter()
            .flatten()
            .collect();
        let truth = fresh_single(&current);
        let mut requests = battery();
        requests.push(SearchRequest::new(&["herring"]).k(2).min_size(1));
        requests.push(SearchRequest::new(&["txakoli"]).k(2).min_size(1));
        for request in &requests {
            let expected = truth.search(request);
            let from_primary = client.search(&request.clone()).unwrap();
            let from_replica = replica_client.search(request).unwrap();
            assert_eq!(
                from_primary, expected,
                "shards={shards} primary {:?}",
                request.keywords
            );
            assert_eq!(
                from_replica, expected,
                "shards={shards} replica {:?}",
                request.keywords
            );
            // Byte-identical on the wire, not just value-equal after
            // parsing: primary and replica emit the same JSON bytes.
            assert_eq!(
                client.search_json(request).unwrap(),
                replica_client.search_json(request).unwrap(),
                "shards={shards} wire bytes {:?}",
                request.keywords
            );
        }
    }
}

#[test]
fn replica_survives_primary_socket_kill_and_resyncs_on_reconnect() {
    let base = crawled_fragments();
    let (server, _net, hub) = primary(&base, 2);
    let fragment = |cuisine: &str, word: &str| {
        Fragment::new(
            FragmentId::new(vec![Value::str(cuisine), Value::Int(7)]),
            [(word.to_string(), 2u64)].into_iter().collect(),
            1,
        )
    };
    server.publish(IndexDelta::adding(vec![fragment("Nordic", "herring")]));

    // Generous retry: after the kill there is a comfortable window in
    // which the replica is provably disconnected and must keep serving.
    let replica = Arc::new(Replica::connect(
        hub.addr(),
        app(),
        ReplicaConfig {
            retry: Duration::from_millis(1500),
            ..ReplicaConfig::default()
        },
    ));
    assert!(replica.wait_epoch(1, SYNC_TIMEOUT));
    let herring = SearchRequest::new(&["herring"]).k(2).min_size(1);
    let larb = SearchRequest::new(&["larb"]).k(2).min_size(1);
    let stale_expected = replica.search(&herring);
    assert_eq!(stale_expected.len(), 1);

    // Kill the primary-side sockets mid-stream.
    hub.disconnect_all();
    assert!(
        replica.wait_connected(false, SYNC_TIMEOUT),
        "replica must notice the dead stream"
    );
    // The primary publishes while the replica is cut off.
    server.publish(IndexDelta::adding(vec![fragment("Lao", "larb")]));
    assert_eq!(server.epoch(), 2);

    // Stale-but-consistent: the replica still serves its last
    // published snapshot — the pre-kill bytes, not a torn state, and
    // nothing of the missed publication.
    assert_eq!(replica.epoch(), 1);
    assert_eq!(replica.search(&herring), stale_expected);
    assert!(replica.search(&larb).is_empty(), "missed delta not applied");

    // Reconnect: the accept loop is still up, and the replica's epoch
    // (1) is still inside the primary's delta log, so the reconnect
    // HELLO is answered with a RESUME — the missed delta replays
    // without re-shipping a snapshot.
    assert!(replica.wait_epoch(2, SYNC_TIMEOUT), "re-sync reaches e2");
    assert_eq!(replica.bootstraps(), 1, "no second snapshot needed");
    assert!(replica.catchups() >= 1, "reconnect resumed from the log");
    let current: Vec<Fragment> = server
        .snapshot()
        .engine
        .dump_shards()
        .into_iter()
        .flatten()
        .collect();
    let truth = fresh_single(&current);
    for request in [&herring, &larb] {
        assert_eq!(replica.search(request), truth.search(request));
    }
}

#[test]
fn socket_searches_stay_exact_across_concurrent_publications() {
    // Searches hammer the socket while the primary publishes a delta
    // history; after the churn quiesces, the served state must be
    // byte-identical to a fresh engine over the final fragments —
    // cached entries included (a stale survivor would differ).
    let base = crawled_fragments();
    let (server, net, _hub) = primary(&base, 4);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let server = &server;
        let stop = &stop;
        scope.spawn(move || {
            for round in 0..30u64 {
                let fragment = Fragment::new(
                    FragmentId::new(vec![Value::str("Churn"), Value::Int(7)]),
                    [("burger".to_string(), 1 + round % 5)]
                        .into_iter()
                        .collect(),
                    1,
                );
                server.publish(IndexDelta::new(vec![fragment.id.clone()], vec![fragment]));
                std::thread::sleep(Duration::from_millis(2));
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        for _ in 0..2 {
            let addr = net.addr();
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                let requests = battery();
                loop {
                    for request in &requests {
                        // Values are unverifiable mid-churn (the epoch
                        // races the assertion); decode success + the
                        // post-quiesce check below are the contract.
                        client.search(request).unwrap();
                    }
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                }
            });
        }
    });
    let current: Vec<Fragment> = server
        .snapshot()
        .engine
        .dump_shards()
        .into_iter()
        .flatten()
        .collect();
    let truth = fresh_single(&current);
    let mut client = NetClient::connect(net.addr()).unwrap();
    assert_socket_equivalent(&mut client, &truth, "post-churn");
}

#[test]
fn stats_report_the_serving_counters() {
    let fragments = crawled_fragments();
    let (_server, net, _hub) = primary(&fragments, 1);
    let mut client = NetClient::connect(net.addr()).unwrap();
    let request = SearchRequest::new(&["burger"]).k(2).min_size(20);
    client.search(&request).unwrap();
    client.search(&request).unwrap(); // cache hit
    let stats = dash::net::json::parse(&client.stats_json().unwrap()).unwrap();
    assert_eq!(stats.get("role").and_then(|v| v.as_str()), Some("primary"));
    assert_eq!(stats.get("searches").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(stats.get("cache_hits").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(stats.get("epoch").and_then(|v| v.as_u64()), Some(0));
    assert!(stats.get("qps").and_then(|v| v.as_f64()).unwrap() > 0.0);
}
