//! The three fragment-derivation paths — reference (in-memory), stepwise
//! (MapReduce) and integrated (MapReduce) — must produce byte-identical
//! fragments on every workload.

use dash::core::crawl::{integrated, reference, stepwise};
use dash::mapreduce::ClusterConfig;
use dash::relation::Database;
use dash::tpch::{generate, Scale, TpchConfig};
use dash::webapp::{fooddb, WebApplication};

fn tiny_tpch() -> Database {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 60;
    config.base_parts = 80;
    config.orders_per_customer = 5;
    config.lineitems_per_order = 3;
    generate(&config)
}

fn assert_equivalent(app: &WebApplication, db: &Database) {
    let cluster = ClusterConfig::default();
    let expected = reference::fragments(app, db).unwrap();
    assert!(!expected.is_empty(), "workload produced no fragments");
    let sw = stepwise::run(app, db, &cluster).unwrap();
    let int = integrated::run(app, db, &cluster).unwrap();
    assert_eq!(sw.fragments, expected, "stepwise deviates from reference");
    assert_eq!(
        int.fragments, expected,
        "integrated deviates from reference"
    );
}

#[test]
fn fooddb_search() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    assert_equivalent(&app, &db);
}

#[test]
fn tpch_q1() {
    let db = tiny_tpch();
    let app = dash::tpch::q1_application(&db).unwrap();
    assert_equivalent(&app, &db);
}

#[test]
fn tpch_q2() {
    let db = tiny_tpch();
    let app = dash::tpch::q2_application(&db).unwrap();
    assert_equivalent(&app, &db);
}

#[test]
fn tpch_q3_four_relations() {
    let db = tiny_tpch();
    let app = dash::tpch::q3_application(&db).unwrap();
    assert_equivalent(&app, &db);
}

/// Q2 and Q3 share selection attributes, so they derive the same
/// fragment identifiers (the paper's Table IV shows identical counts);
/// Q3's fragments carry strictly more keywords (part attributes).
#[test]
fn q2_q3_fragment_relationship() {
    let db = tiny_tpch();
    let q2 = dash::tpch::q2_application(&db).unwrap();
    let q3 = dash::tpch::q3_application(&db).unwrap();
    let f2 = reference::fragments(&q2, &db).unwrap();
    let f3 = reference::fragments(&q3, &db).unwrap();
    assert_eq!(f2.len(), f3.len());
    let ids2: Vec<_> = f2.iter().map(|f| &f.id).collect();
    let ids3: Vec<_> = f3.iter().map(|f| &f.id).collect();
    assert_eq!(ids2, ids3);
    let total2: u64 = f2.iter().map(|f| f.total_keywords).sum();
    let total3: u64 = f3.iter().map(|f| f.total_keywords).sum();
    assert!(total3 > total2);
}

/// Fragment record counts always partition the join: Σ record_count =
/// |R1 ⋈ … ⋈ Rn| — on every workload and derivation path.
#[test]
fn fragments_partition_the_join() {
    let db = tiny_tpch();
    for app in [
        dash::tpch::q1_application(&db).unwrap(),
        dash::tpch::q2_application(&db).unwrap(),
        dash::tpch::q3_application(&db).unwrap(),
    ] {
        let joined = app.query.join_all(&db).unwrap();
        let fragments = reference::fragments(&app, &db).unwrap();
        let total: u64 = fragments.iter().map(|f| f.record_count).sum();
        assert_eq!(total, joined.len() as u64, "{} partition broken", app.name);
    }
}
