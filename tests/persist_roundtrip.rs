//! Persistence round-trips through the handle-based index: fragments
//! written with `persist::write_fragments` and read back must rebuild
//! engines — single *and* sharded — whose searches are byte-identical
//! to the originals. The columnar arenas (catalog columns, posting
//! arenas, group columns) are all derived from the fragment stream, so
//! this pins the whole save → ship → serve path the paper's hours-long
//! crawls motivate.

use dash::core::crawl::reference;
use dash::core::persist::{
    read_fragments, read_sharded_fragments, write_fragments, write_sharded_fragments,
};
use dash::core::{DashConfig, DashEngine, IngestSource, SearchRequest, ShardedEngine};
use dash::mapreduce::WorkflowStats;
use dash::relation::{Record, Value};
use dash::webapp::fooddb;
use dash_tpch::{generate, Scale, TpchConfig};

#[test]
fn fooddb_roundtrip_preserves_all_search_results() {
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let fragments = reference::fragments(&app, &db).unwrap();

    let mut buf = Vec::new();
    write_fragments(&mut buf, &fragments).unwrap();
    let loaded = read_fragments(buf.as_slice()).unwrap();
    assert_eq!(loaded, fragments);

    let original =
        DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).unwrap();
    let restored = DashEngine::from_fragments(app, &loaded, WorkflowStats::new()).unwrap();
    assert_eq!(original.fragment_count(), restored.fragment_count());
    for (keywords, k, s) in [
        (vec!["burger"], 2, 20u64),
        (vec!["burger", "fries"], 5, 1),
        (vec!["american"], 10, 1),
        (vec!["thai"], 3, 100),
    ] {
        let request = SearchRequest::new(&keywords).k(k).min_size(s);
        assert_eq!(original.search(&request), restored.search(&request));
    }
}

#[test]
fn tpch_q2_roundtrip_preserves_index_and_search() {
    let mut config = TpchConfig::new(Scale::Custom(1));
    config.base_customers = 40;
    config.base_parts = 50;
    let db = generate(&config);
    let app = dash_tpch::q2_application(&db).expect("Q2 analyzes");
    let fragments = reference::fragments(&app, &db).expect("crawl");
    assert!(!fragments.is_empty());

    let mut buf = Vec::new();
    write_fragments(&mut buf, &fragments).unwrap();
    let loaded = read_fragments(buf.as_slice()).unwrap();
    assert_eq!(loaded, fragments);

    let original =
        DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).unwrap();
    let restored = DashEngine::from_fragments(app, &loaded, WorkflowStats::new()).unwrap();
    // The rebuilt columnar arenas carry identical statistics...
    assert_eq!(
        original.index().inverted.posting_count(),
        restored.index().inverted.posting_count()
    );
    assert_eq!(
        original.index().graph.edge_count(),
        restored.index().graph.edge_count()
    );
    assert_eq!(
        original.index().inverted.keywords_by_df(),
        restored.index().inverted.keywords_by_df()
    );
    // ...and identical search behavior across keyword temperatures.
    let ranked = original.index().inverted.keywords_by_df();
    for idx in [0, ranked.len() / 2, ranked.len() - 1] {
        let word = ranked[idx].0;
        for s in [1u64, 100, 1000] {
            let request = SearchRequest::new(&[word]).k(10).min_size(s);
            assert_eq!(
                original.search(&request),
                restored.search(&request),
                "{word} s={s}"
            );
        }
    }
}

#[test]
fn sharded_engine_from_persisted_fragments_matches_original() {
    // The serving-tier story: crawl once, persist, load on a serving
    // node, shard there — results must match the crawl-side engine.
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let fragments = reference::fragments(&app, &db).unwrap();
    let crawl_side =
        DashEngine::from_fragments(app.clone(), &fragments, WorkflowStats::new()).unwrap();

    let mut buf = Vec::new();
    write_fragments(&mut buf, &fragments).unwrap();
    let loaded = read_fragments(buf.as_slice()).unwrap();

    for shards in [1, 2, 4] {
        let serving = ShardedEngine::builder(app.clone())
            .shards(shards)
            .source(IngestSource::Fragments(&loaded))
            .build()
            .unwrap();
        for (keywords, k, s) in [
            (vec!["burger"], 2, 20u64),
            (vec!["burger", "fries"], 5, 1),
            (vec!["american"], 10, 1),
        ] {
            let request = SearchRequest::new(&keywords).k(k).min_size(s);
            assert_eq!(
                serving.search(&request),
                crawl_side.search(&request),
                "shards={shards} keywords={keywords:?}"
            );
        }
    }
}

#[test]
fn maintained_sharded_engine_roundtrips_per_shard_without_repartitioning() {
    // A maintained engine's partition has drifted from what a fresh
    // `partition()` would choose (the new Mexican group landed wherever
    // the static routing table put it). The per-shard dump must
    // preserve that drifted partition exactly — same shard sizes, same
    // byte-identical searches — instead of re-balancing on load.
    let mut db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let mut engine = ShardedEngine::builder(app.clone())
        .shards(3)
        .source(IngestSource::Crawl {
            db: &db,
            config: &DashConfig::default(),
        })
        .build()
        .unwrap();
    for (rid, budget) in [(120i64, 7i64), (121, 9), (122, 13)] {
        let record = Record::new(vec![
            Value::Int(rid),
            Value::str("Taqueria"),
            Value::str("Mexican"),
            Value::Int(budget),
            Value::str("4.2"),
        ]);
        db.table_mut("restaurant")
            .unwrap()
            .insert(record.clone())
            .unwrap();
        engine.apply_insert(&db, "restaurant", &record).unwrap();
    }

    let dumped = engine.dump_shards();
    let mut buf = Vec::new();
    write_sharded_fragments(&mut buf, &dumped).unwrap();
    let loaded = read_sharded_fragments(buf.as_slice()).unwrap();
    assert_eq!(loaded, dumped);

    let restored = ShardedEngine::builder(app.clone())
        .source(IngestSource::ShardDumps(&loaded))
        .build()
        .unwrap();
    assert_eq!(restored.shard_count(), engine.shard_count());
    assert_eq!(restored.shard_sizes(), engine.shard_sizes());
    assert_eq!(restored.fragment_count(), engine.fragment_count());
    for (keywords, k, s) in [
        (vec!["burger"], 2, 20u64),
        (vec!["taqueria"], 5, 1),
        (vec!["burger", "fries"], 5, 1),
        (vec!["american"], 10, 1),
    ] {
        let request = SearchRequest::new(&keywords).k(k).min_size(s);
        assert_eq!(
            restored.search(&request),
            engine.search(&request),
            "keywords={keywords:?}"
        );
    }
}

#[test]
fn roundtrip_then_incremental_maintenance_matches_rebuild() {
    // Persistence composes with maintenance: load, mutate, and the
    // index must behave like one rebuilt from the mutated set.
    let db = fooddb::database();
    let app = fooddb::search_application().unwrap();
    let fragments = reference::fragments(&app, &db).unwrap();

    let mut buf = Vec::new();
    write_fragments(&mut buf, &fragments).unwrap();
    let loaded = read_fragments(buf.as_slice()).unwrap();

    let mut engine =
        DashEngine::from_fragments(app.clone(), &loaded, WorkflowStats::new()).unwrap();
    let removed = loaded[0].id.clone();
    assert!(engine.index_mut().remove_fragment(&removed));
    let remaining: Vec<_> = loaded[1..].to_vec();
    let rebuilt = DashEngine::from_fragments(app, &remaining, WorkflowStats::new()).unwrap();
    for keywords in [vec!["burger"], vec!["american"], vec!["thai"]] {
        let request = SearchRequest::new(&keywords).k(10).min_size(1);
        assert_eq!(
            engine.search(&request),
            rebuilt.search(&request),
            "{keywords:?}"
        );
    }
}
