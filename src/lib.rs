//! # Dash — a search engine for database-generated dynamic web pages
//!
//! This crate is the facade of the Dash workspace, a from-scratch Rust
//! reproduction of *"Dash: A Novel Search Engine for Database-Generated
//! Dynamic Web Pages"* (Lee, Bankar, Zheng, Chow, Wang — ICDCS 2012).
//!
//! Dash makes *db-pages* — dynamic pages a web application generates from a
//! backend database for each query string — searchable without ever invoking
//! the application. It reverse-engineers the application into a
//! parameterized project-select-join query, crawls the **database** for
//! disjoint *db-page fragments*, indexes them (inverted fragment index +
//! fragment graph), and answers keyword queries by assembling the top-k
//! most relevant db-pages and suggesting their URLs.
//!
//! ## Workspace map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`relation`] | `dash-relation` | typed values, schemas, tables, PSJ operators |
//! | [`mapreduce`] | `dash-mapreduce` | simulated MapReduce cluster with a byte-metered cost model |
//! | [`sql`] | `dash-sql` | lexer/parser for the parameterized PSJ SQL dialect |
//! | [`webapp`] | `dash-webapp` | servlet mini-language, app analyzer, query strings, db-page rendering |
//! | [`text`] | `dash-text` | tokenizer, TF/IDF, conventional inverted file |
//! | [`tpch`] | `dash-tpch` | TPC-H-style dataset generator + the paper's Q1/Q2/Q3 |
//! | [`obs`] | `dash-obs` | pure-std observability: lock-free latency histograms, counters/gauges, spans, the slow-query log, the Prometheus text exposition |
//! | [`core`] | `dash-core` | fragments, crawling (stepwise & integrated), fragment index, top-k search, the engine-ingest layer (one builder front door + the distributed fault-tolerant mapreduce build) |
//! | [`serve`] | `dash-serve` | snapshot-swapping serving front-end: result cache, micro-batching, closed-loop load harness |
//! | [`net`] | `dash-net` | socket serving: HTTP/1.1 front-end, primary→replica delta replication over TCP, socket client + load harness |
//!
//! ## Quickstart
//!
//! ```
//! use dash::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's running example: fooddb + the `Search` servlet.
//! let db = dash::webapp::fooddb::database();
//! let app = dash::webapp::fooddb::search_application()?;
//!
//! // Build the Dash engine (crawl the database, index fragments).
//! let engine = DashEngine::build(&app, &db, &DashConfig::default())?;
//!
//! // Keyword search: top-2 db-pages containing "burger".
//! let results = engine.search(&SearchRequest::new(&["burger"]).k(2).min_size(20));
//! assert!(!results.is_empty());
//! for hit in &results {
//!     println!("{} (score {:.4})", hit.url, hit.score);
//! }
//! # Ok(())
//! # }
//! ```

pub use dash_core as core;
pub use dash_mapreduce as mapreduce;
pub use dash_net as net;
pub use dash_obs as obs;
pub use dash_relation as relation;
pub use dash_serve as serve;
pub use dash_sql as sql;
pub use dash_text as text;
pub use dash_tpch as tpch;
pub use dash_webapp as webapp;

/// The most commonly used types, re-exported for one-line imports.
pub mod prelude {
    pub use dash_core::{
        DashConfig, DashEngine, DeltaSignature, EngineBuilder, Fragment, FragmentId, FragmentIndex,
        IndexDelta, IngestConfig, IngestSource, MultiDash, RecordChange, SearchEngine, SearchHit,
        SearchRequest, ShardedEngine,
    };
    pub use dash_net::{
        BackoffConfig, NetClient, NetConfig, NetServer, Replica, ReplicaConfig, ReplicationHub,
        Router, RouterConfig, Upstream,
    };
    pub use dash_relation::{Database, Record, Schema, Table, Value};
    pub use dash_serve::{DashServer, ServeConfig};
    pub use dash_webapp::{DbPage, QueryString, WebApplication};
}
